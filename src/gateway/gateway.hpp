#pragma once
// intooa-gateway's engine: a dependency-free HTTP/1.1 front end over the
// api::Session facade, so dashboards and non-C++ clients drive evaluations
// and campaign jobs with plain curl instead of linking the binary-protocol
// clients. One connection-handler thread per client (the svc::Server
// model, with sched::JobService's announce-and-reap thread hygiene),
// bounded admission (connections past max_connections are answered 503 and
// closed), keep-alive with pipelining, and two timeouts: idle_timeout_ms
// between requests and request_grace_ms to finish a request that started
// arriving (the slowloris bound — a trickling peer gets 408, not a thread
// forever).
//
// Routes (docs/GATEWAY.md has the reference with curl examples):
//
//   GET    /healthz            liveness (200, or 503 while draining)
//   GET    /metrics            Prometheus exposition of this process
//   GET    /v1/stats           evaluator stats document (proxied)
//   POST   /v1/evaluations     one evaluation; JSON body {"spec","topology"}
//   POST   /v1/jobs            submit a campaign job (JSON JobSpec)
//   GET    /v1/jobs[?tenant=T] list jobs
//   GET    /v1/jobs/{id}       one job; ?watch=1[&timeout_ms=N] long-polls
//                              until the job is terminal or the wait cap
//   DELETE /v1/jobs/{id}       cancel
//
// Error bodies are api::error_to_json of the api::Error taxonomy and the
// status is api::error_http_status(code) — deterministic both ways.
//
// Drain: begin_drain() (or a byte on wake_fd(), the async-signal-safe
// spelling) stops admitting work; in-flight handlers finish their current
// request, further requests are answered 503 with Retry-After, and — so
// that plain HTTP clients can observe the drain instead of a vanished
// listener — the acceptor keeps accepting for drain_linger_ms, answering
// one 503 + Retry-After per connection (Connection: close, so no peer can
// pin a handler past the linger deadline) before run() returns.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "gateway/http.hpp"
#include "svc/socket.hpp"

namespace intooa::gateway {

struct GatewayConfig {
  svc::Address listen;  ///< HTTP endpoint (tcp host:port or unix path)
  /// Evaluation endpoints for POST /v1/evaluations and GET /v1/stats.
  std::vector<svc::Address> evaluators;
  /// Scheduler endpoint for the /v1/jobs routes.
  std::optional<svc::Address> scheduler;
  /// Evaluation pool tuning (inflight depth, reconnect policy).
  svc::ClientPoolConfig pool;
  std::size_t max_connections = 64;
  /// Close a keep-alive connection idle this long between requests;
  /// < 0 = never.
  int idle_timeout_ms = 60'000;
  /// A request that started arriving must complete within this budget or
  /// the connection is answered 408 and closed (slowloris bound).
  int request_grace_ms = 10'000;
  /// After drain begins, keep accepting (and answering 503 + Retry-After)
  /// this long so HTTP clients observe the drain. 0 = stop immediately.
  int drain_linger_ms = 0;
  /// Retry-After seconds advertised on 503 drain responses.
  int retry_after_s = 1;
  /// Parser bounds.
  std::size_t max_head_bytes = 16 * 1024;
  std::size_t max_body_bytes = 1 << 20;
  /// Long-poll cap for GET /v1/jobs/{id}?watch=1 (per request; the client
  /// re-polls for longer waits).
  int watch_cap_ms = 30'000;
  /// Poll interval while watching a job.
  int watch_interval_ms = 250;
  /// Opt-in structured access log: one key=value line per request.
  std::string access_log;
};

/// Point-in-time gateway counters (process-local mirror of the gateway.*
/// metrics, exposed for tests and the drain log line).
struct GatewayStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t timeouts = 0;  ///< 408s (slowloris grace expiries)
};

class Gateway {
 public:
  explicit Gateway(GatewayConfig config);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds and listens (separate from run() so callers know the endpoint
  /// accepts before spawning clients). Throws on bind failure.
  void bind();

  /// Accept loop; blocks until a drain (plus linger) completes.
  void run();

  /// Starts a graceful drain. Thread-safe, idempotent, NOT async-signal-
  /// safe — from a signal handler write one byte to wake_fd() instead.
  void begin_drain();

  /// Write end of the accept loop's self-pipe (async-signal-safe wake).
  int wake_fd() const { return wake_tx_.get(); }

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  GatewayStats stats() const;

  /// Connection-handler threads currently tracked (live + unreaped);
  /// bounded like svc::Server's.
  std::size_t connection_thread_count() const;

  /// Routes one parsed request to a response — the pure routing core,
  /// public so tests drive it without sockets. Thread-safe.
  HttpResponse route(const HttpRequest& request);

  const GatewayConfig& config() const { return config_; }

 private:
  void handle_connection(svc::Fd fd, std::string peer);
  /// Answers the first request 503 + Retry-After and closes; bounded by a
  /// wall-clock linger deadline (drain-linger connections).
  void handle_drain_connection(svc::Fd fd);
  HttpResponse drain_response() const;
  HttpResponse error_response(const api::Error& error) const;
  static HttpResponse method_not_allowed(const std::string& allow);

  HttpResponse route_healthz() const;
  HttpResponse route_metrics() const;
  HttpResponse route_stats();
  HttpResponse route_evaluate(const HttpRequest& request);
  HttpResponse route_jobs(const HttpRequest& request);
  HttpResponse route_job(const HttpRequest& request, std::uint64_t job_id);

  void reap_finished_connections();
  void join_all_connections();
  void count_response(int status);
  void write_access_log(const std::string& peer, const HttpRequest& request,
                        int status, std::uint64_t duration_ns);

  GatewayConfig config_;
  svc::Fd listen_fd_;
  svc::Fd wake_rx_, wake_tx_;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> open_connections_{0};
  std::uint64_t start_ns_ = 0;

  std::unique_ptr<api::Session> session_;
  /// The job/stats sub-APIs are single-connection request/response
  /// clients; handler threads serialize on this around each call.
  std::mutex session_mutex_;

  std::mutex access_log_mutex_;
  std::ofstream access_log_;

  mutable std::mutex threads_mutex_;
  std::map<std::uint64_t, std::thread> connection_threads_;
  std::vector<std::uint64_t> finished_ids_;
  std::uint64_t next_connection_id_ = 1;

  mutable std::mutex stats_mutex_;
  GatewayStats stats_;
};

}  // namespace intooa::gateway
