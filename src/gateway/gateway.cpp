#include "gateway/gateway.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "api/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/version.hpp"

namespace intooa::gateway {

namespace {

/// Poll slice for connection reads, matching svc::Server: short enough
/// that a drain is observed promptly, long enough to stay cheap.
constexpr int kPollSliceMs = 100;

obs::Counter& requests_counter() {
  static obs::Counter& c = obs::registry().counter("gateway.requests");
  return c;
}
obs::Counter& connections_counter() {
  static obs::Counter& c = obs::registry().counter("gateway.connections");
  return c;
}
obs::Counter& errors_counter() {
  static obs::Counter& c = obs::registry().counter("gateway.errors");
  return c;
}
obs::Histogram& request_histogram() {
  static obs::Histogram& h =
      obs::registry().histogram("gateway.request_ns", obs::Unit::Nanoseconds);
  return h;
}

/// Reads whatever is available (poll-gated). Returns bytes read, 0 on
/// orderly EOF, -1 on error, -2 on poll timeout.
/// Access-log fields come straight off the wire (the parser strips \r only
/// immediately before \n, so a request target can smuggle bare carriage
/// returns or escape bytes); percent-escape control characters so one
/// request cannot forge extra fields or lines in the key=value log.
std::string sanitize_log_field(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char raw : in) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (c < 0x20 || c == 0x7f) {
      char hex[4];
      std::snprintf(hex, sizeof hex, "%%%02X", c);
      out += hex;
    } else {
      out += raw;
    }
  }
  return out;
}

ssize_t read_some(int fd, char* out, std::size_t capacity, int timeout_ms) {
  struct pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  const int got = ::poll(&p, 1, timeout_ms);
  if (got == 0) return -2;
  if (got < 0) return errno == EINTR ? -2 : -1;
  for (;;) {
    const ssize_t n = ::recv(fd, out, capacity, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
    return -1;
  }
}

}  // namespace

Gateway::Gateway(GatewayConfig config) : config_(std::move(config)) {
  api::SessionConfig session;
  session.evaluators = config_.evaluators;
  session.scheduler = config_.scheduler;
  session.pool = config_.pool;
  session_ = std::make_unique<api::Session>(std::move(session));
}

Gateway::~Gateway() {
  begin_drain();
  join_all_connections();
}

void Gateway::bind() {
  if (listen_fd_.valid()) return;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error(std::string("gateway: pipe: ") +
                             std::strerror(errno));
  }
  wake_rx_ = svc::Fd(pipe_fds[0]);
  wake_tx_ = svc::Fd(pipe_fds[1]);
  listen_fd_ = svc::listen_on(config_.listen);
  start_ns_ = obs::detail::monotonic_ns();
  if (!config_.access_log.empty()) {
    access_log_.open(config_.access_log, std::ios::app);
    if (!access_log_) {
      util::log_warn(
          "gateway: cannot open access log; access logging disabled",
          {{"path", config_.access_log}});
    }
  }
  util::log_info(
      "intooa-gateway listening on " + config_.listen.to_string(),
      {{"evaluators", config_.evaluators.size()},
       {"scheduler",
        config_.scheduler ? config_.scheduler->to_string() : "(none)"},
       {"max_connections", config_.max_connections},
       {"build", util::version_string()}});
}

void Gateway::run() {
  bind();
  while (!draining()) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_.get(), POLLIN, 0};
    fds[1] = {wake_rx_.get(), POLLIN, 0};
    const int got = ::poll(fds, 2, 1000);
    if (got < 0) {
      if (errno == EINTR) continue;
      util::log_error(std::string("gateway: accept poll: ") +
                      std::strerror(errno));
      break;
    }
    if (got == 0) continue;
    if (fds[1].revents != 0) {
      begin_drain();
      break;
    }
    if (fds[0].revents == 0) continue;
    svc::Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      util::log_error(std::string("gateway: accept: ") +
                      std::strerror(errno));
      continue;
    }
    if (open_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Connection-level backpressure: one 503 + Retry-After, then close.
      HttpResponse busy = drain_response();
      busy.body = api::error_to_json(
                      api::Error{api::ErrorCode::Busy,
                                 "gateway connection limit reached",
                                 0})
                      .dump();
      svc::write_all(client.get(), render_response(busy, false));
      count_response(busy.status);
      continue;
    }
    reap_finished_connections();
    std::string peer = svc::peer_name(client.get());
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_counter().add();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    const std::uint64_t id = next_connection_id_++;
    connection_threads_.emplace(
        id, std::thread([this, id, fd = std::move(client),
                         peer = std::move(peer)]() mutable {
          handle_connection(std::move(fd), std::move(peer));
          // Announce completion so the accept loop can reap this thread;
          // must be the handler thread's last touch of gateway state.
          std::lock_guard<std::mutex> lock(threads_mutex_);
          finished_ids_.push_back(id);
        }));
  }

  // Drain linger: a stopped listener looks like an outage to an HTTP
  // client; keep accepting for a bounded window and answer 503 with
  // Retry-After so callers observe the drain and back off.
  if (config_.drain_linger_ms > 0) {
    const std::uint64_t deadline =
        obs::detail::monotonic_ns() +
        static_cast<std::uint64_t>(config_.drain_linger_ms) * 1'000'000;
    for (;;) {
      const std::int64_t left_ns =
          static_cast<std::int64_t>(deadline - obs::detail::monotonic_ns());
      if (left_ns <= 0) break;
      struct pollfd p{listen_fd_.get(), POLLIN, 0};
      const int got = ::poll(
          &p, 1,
          static_cast<int>(std::min<std::int64_t>(
              (left_ns + 999'999) / 1'000'000, 1000)));
      if (got < 0 && errno != EINTR) break;
      if (got <= 0 || p.revents == 0) continue;
      svc::Fd client(::accept(listen_fd_.get(), nullptr, nullptr));
      if (!client.valid()) continue;
      reap_finished_connections();
      std::lock_guard<std::mutex> lock(threads_mutex_);
      const std::uint64_t id = next_connection_id_++;
      connection_threads_.emplace(
          id, std::thread([this, id, fd = std::move(client)]() mutable {
            handle_drain_connection(std::move(fd));
            std::lock_guard<std::mutex> lock(threads_mutex_);
            finished_ids_.push_back(id);
          }));
    }
  }

  join_all_connections();
  session_->close();
  if (config_.listen.kind == svc::Address::Kind::Unix) {
    ::unlink(config_.listen.path.c_str());
  }
  const GatewayStats final = stats();
  util::log_info("intooa-gateway drained",
                 {{"requests", final.requests},
                  {"responses_2xx", final.responses_2xx},
                  {"responses_4xx", final.responses_4xx},
                  {"responses_5xx", final.responses_5xx},
                  {"parse_errors", final.parse_errors},
                  {"timeouts", final.timeouts}});
}

void Gateway::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  if (wake_tx_.valid()) {
    const char byte = 1;
    [[maybe_unused]] ssize_t ignored = ::write(wake_tx_.get(), &byte, 1);
  }
}

GatewayStats Gateway::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t Gateway::connection_thread_count() const {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  return connection_threads_.size();
}

void Gateway::join_all_connections() {
  // Move the threads out before joining: a finishing handler takes
  // threads_mutex_ to announce its id, so joining under the lock would
  // deadlock against it.
  std::map<std::uint64_t, std::thread> drained;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    drained.swap(connection_threads_);
    finished_ids_.clear();
  }
  for (auto& [id, thread] : drained) {
    if (thread.joinable()) thread.join();
  }
}

void Gateway::reap_finished_connections() {
  std::vector<std::thread> reaped;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const std::uint64_t id : finished_ids_) {
      const auto it = connection_threads_.find(id);
      if (it == connection_threads_.end()) continue;
      reaped.push_back(std::move(it->second));
      connection_threads_.erase(it);
    }
    finished_ids_.clear();
  }
  for (auto& thread : reaped) {
    if (thread.joinable()) thread.join();
  }
}

void Gateway::count_response(int status) {
  if (status >= 400) errors_counter().add();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  if (status >= 200 && status < 300) {
    ++stats_.responses_2xx;
  } else if (status >= 400 && status < 500) {
    ++stats_.responses_4xx;
  } else if (status >= 500) {
    ++stats_.responses_5xx;
  }
}

void Gateway::write_access_log(const std::string& peer,
                               const HttpRequest& request, int status,
                               std::uint64_t duration_ns) {
  if (!access_log_.is_open()) return;
  std::lock_guard<std::mutex> lock(access_log_mutex_);
  access_log_ << "ts_ns=" << obs::detail::monotonic_ns()
              << " peer=" << peer
              << " method=" << sanitize_log_field(request.method)
              << " target=" << sanitize_log_field(request.target)
              << " status=" << status
              << " duration_ns=" << duration_ns << '\n';
  access_log_.flush();  // one line per request; losing lines to a crash
                        // would defeat the log's post-mortem purpose
}

HttpResponse Gateway::drain_response() const {
  HttpResponse response;
  response.status = 503;
  response.headers["Retry-After"] = std::to_string(config_.retry_after_s);
  response.body =
      api::error_to_json(
          api::Error{api::ErrorCode::Draining,
                     "gateway is draining; retry against another instance",
                     static_cast<std::uint32_t>(config_.retry_after_s) *
                         1000})
          .dump();
  return response;
}

HttpResponse Gateway::error_response(const api::Error& error) const {
  HttpResponse response;
  response.status = error.http_status();
  if (error.code == api::ErrorCode::Draining ||
      error.code == api::ErrorCode::Busy ||
      error.code == api::ErrorCode::QueueFull) {
    const std::uint32_t hint_ms =
        error.retry_after_ms > 0
            ? error.retry_after_ms
            : static_cast<std::uint32_t>(config_.retry_after_s) * 1000;
    response.headers["Retry-After"] =
        std::to_string((hint_ms + 999) / 1000);
  }
  response.body = api::error_to_json(error).dump();
  return response;
}

void Gateway::handle_connection(svc::Fd fd, std::string peer) {
  HttpParser parser({config_.max_head_bytes, config_.max_body_bytes});
  char buffer[8192];
  int idle_ms = 0;
  // Monotonic time the pending request's first byte arrived; 0 when no
  // request is mid-flight.
  std::uint64_t request_start_ns = 0;
  bool open = true;
  while (open) {
    // Serve every complete buffered request before reading more
    // (pipelining: several may arrive in one read).
    while (parser.status() == HttpParser::Status::Ready) {
      const HttpRequest request = parser.take_request();
      const std::uint64_t started = obs::detail::monotonic_ns();
      const HttpResponse response =
          draining() ? drain_response() : route(request);
      const std::uint64_t duration =
          obs::detail::monotonic_ns() - started;
      request_histogram().record(duration);
      count_response(response.status);
      write_access_log(peer, request, response.status, duration);
      const bool keep = request.keep_alive && !draining();
      if (!svc::write_all(fd.get(), render_response(response, keep)) ||
          !keep) {
        open = false;
        break;
      }
      idle_ms = 0;
      request_start_ns = 0;  // the grace window restarts per request
    }
    if (!open) break;
    if (parser.status() == HttpParser::Status::Error) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.parse_errors;
      }
      HttpResponse response;
      response.status = parser.error_status();
      response.body =
          api::error_to_json(api::Error{api::ErrorCode::InvalidArgument,
                                        parser.error_message(), 0})
              .dump();
      count_response(response.status);
      svc::write_all(fd.get(), render_response(response, false));
      break;
    }

    // Slowloris bound: the grace window runs on the wall clock from the
    // first byte of an incomplete request, so a peer trickling one byte
    // per poll slice cannot extend it — once it expires the request is
    // answered 408 and the connection closed.
    if (parser.mid_request()) {
      const std::uint64_t now = obs::detail::monotonic_ns();
      if (request_start_ns == 0) request_start_ns = now;
      if (now - request_start_ns >=
          static_cast<std::uint64_t>(config_.request_grace_ms) *
              1'000'000) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.timeouts;
        }
        HttpResponse response;
        response.status = 408;
        response.body = api::error_to_json(
                            api::Error{api::ErrorCode::Timeout,
                                       "request not completed within " +
                                           std::to_string(
                                               config_.request_grace_ms) +
                                           " ms",
                                       0})
                            .dump();
        count_response(response.status);
        svc::write_all(fd.get(), render_response(response, false));
        break;
      }
    } else {
      request_start_ns = 0;
    }

    const ssize_t got =
        read_some(fd.get(), buffer, sizeof buffer, kPollSliceMs);
    if (got == -2) {
      if (draining() && !parser.mid_request()) break;
      if (!parser.mid_request()) {
        idle_ms += kPollSliceMs;
        if (config_.idle_timeout_ms >= 0 &&
            idle_ms >= config_.idle_timeout_ms) {
          break;
        }
      }
      continue;
    }
    if (got <= 0) break;  // orderly EOF or I/O error
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
  }
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Gateway::handle_drain_connection(svc::Fd fd) {
  // Linger-phase connection: parse one request only to frame the answer,
  // reply 503 + Retry-After with Connection: close, and hang up. One
  // answer per connection and a wall-clock deadline (not idle-slice
  // accounting) guarantee run()'s join_all_connections() is bounded by
  // drain_linger_ms no matter how chattily a peer keeps sending.
  HttpParser parser({config_.max_head_bytes, config_.max_body_bytes});
  char buffer[4096];
  const std::uint64_t deadline =
      obs::detail::monotonic_ns() +
      static_cast<std::uint64_t>(config_.drain_linger_ms) * 1'000'000;
  while (obs::detail::monotonic_ns() < deadline) {
    if (parser.status() == HttpParser::Status::Ready) {
      (void)parser.take_request();
      const HttpResponse response = drain_response();
      count_response(response.status);
      svc::write_all(fd.get(), render_response(response, false));
      return;
    }
    if (parser.status() == HttpParser::Status::Error) {
      svc::write_all(fd.get(), render_response(drain_response(), false));
      return;
    }
    const ssize_t got =
        read_some(fd.get(), buffer, sizeof buffer, kPollSliceMs);
    if (got == -2) continue;
    if (got <= 0) return;
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(got)));
  }
}

// ---- routing ----

HttpResponse Gateway::route(const HttpRequest& request) {
  INTOOA_SPAN("gateway.route");
  requests_counter().add();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  if (draining()) return drain_response();

  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") return method_not_allowed("GET");
    return route_healthz();
  }
  if (path == "/metrics") {
    if (request.method != "GET") return method_not_allowed("GET");
    return route_metrics();
  }
  if (path == "/v1/stats") {
    if (request.method != "GET") return method_not_allowed("GET");
    return route_stats();
  }
  if (path == "/v1/evaluations") {
    if (request.method != "POST") return method_not_allowed("POST");
    return route_evaluate(request);
  }
  if (path == "/v1/jobs") {
    if (request.method != "GET" && request.method != "POST") {
      return method_not_allowed("GET, POST");
    }
    return route_jobs(request);
  }
  if (path.rfind("/v1/jobs/", 0) == 0) {
    const std::string id_text = path.substr(9);
    if (id_text.empty() ||
        id_text.find_first_not_of("0123456789") != std::string::npos ||
        id_text.size() > 19) {
      return error_response(api::Error{
          api::ErrorCode::NotFound, "no such route: " + path, 0});
    }
    if (request.method != "GET" && request.method != "DELETE") {
      return method_not_allowed("GET, DELETE");
    }
    return route_job(request, std::stoull(id_text));
  }
  return error_response(
      api::Error{api::ErrorCode::NotFound, "no such route: " + path, 0});
}

HttpResponse Gateway::method_not_allowed(const std::string& allow) {
  HttpResponse response;
  response.status = 405;
  response.headers["Allow"] = allow;
  response.body =
      api::error_to_json(api::Error{api::ErrorCode::InvalidArgument,
                                    "method not allowed (allow: " + allow +
                                        ")",
                                    0})
          .dump();
  return response;
}

HttpResponse Gateway::route_healthz() const {
  obs::Json body = obs::Json::object();
  body["status"] = obs::Json("ok");
  body["build"] = obs::Json(util::version_string());
  body["uptime_seconds"] = obs::Json(
      static_cast<double>(obs::detail::monotonic_ns() - start_ns_) / 1e9);
  HttpResponse response;
  response.body = body.dump();
  return response;
}

HttpResponse Gateway::route_metrics() const {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = obs::render_prometheus(obs::snapshot());
  return response;
}

HttpResponse Gateway::route_stats() {
  api::Expected<std::string> stats = [this] {
    std::lock_guard<std::mutex> lock(session_mutex_);
    return session_->stats().fetch_json(false);
  }();
  if (!stats.ok()) return error_response(stats.error());
  HttpResponse response;
  response.body = std::move(stats).take();
  return response;
}

HttpResponse Gateway::route_evaluate(const HttpRequest& request) {
  obs::Json body;
  try {
    body = obs::Json::parse(request.body);
  } catch (const std::exception& e) {
    return error_response(
        api::Error{api::ErrorCode::InvalidArgument,
                   std::string("malformed JSON body: ") + e.what(), 0});
  }
  api::Expected<svc::EvalRequest> decoded =
      api::eval_request_from_json(body);
  if (!decoded.ok()) return error_response(decoded.error());
  // Evaluations are pool-routed and thread-safe: no session lock held
  // while the (potentially long) evaluation runs.
  api::Expected<api::EvaluationOutcome> outcome =
      session_->evaluations().evaluate(decoded.value());
  if (!outcome.ok()) return error_response(outcome.error());
  HttpResponse response;
  response.body =
      api::evaluation_to_json(decoded.value(), outcome.value()).dump();
  return response;
}

HttpResponse Gateway::route_jobs(const HttpRequest& request) {
  if (request.method == "GET") {
    const auto params = request.query_params();
    const auto tenant = params.find("tenant");
    api::Expected<std::vector<sched::JobInfo>> jobs = [&] {
      std::lock_guard<std::mutex> lock(session_mutex_);
      return session_->jobs().list(
          tenant == params.end() ? "" : tenant->second);
    }();
    if (!jobs.ok()) return error_response(jobs.error());
    obs::Json list = obs::Json::array();
    for (const sched::JobInfo& info : jobs.value()) {
      list.push_back(api::job_info_to_json(info));
    }
    obs::Json body = obs::Json::object();
    body["jobs"] = std::move(list);
    HttpResponse response;
    response.body = body.dump();
    return response;
  }

  // POST: submit.
  obs::Json body;
  try {
    body = obs::Json::parse(request.body);
  } catch (const std::exception& e) {
    return error_response(
        api::Error{api::ErrorCode::InvalidArgument,
                   std::string("malformed JSON body: ") + e.what(), 0});
  }
  api::Expected<sched::JobSpec> spec = api::job_spec_from_json(body);
  if (!spec.ok()) return error_response(spec.error());
  api::Expected<std::uint64_t> submitted = [&] {
    std::lock_guard<std::mutex> lock(session_mutex_);
    return session_->jobs().submit(spec.value());
  }();
  if (!submitted.ok()) return error_response(submitted.error());
  obs::Json reply = obs::Json::object();
  reply["id"] = obs::Json(static_cast<unsigned long long>(submitted.value()));
  reply["state"] = obs::Json("queued");
  HttpResponse response;
  response.status = 201;
  response.headers["Location"] =
      "/v1/jobs/" + std::to_string(submitted.value());
  response.body = reply.dump();
  return response;
}

HttpResponse Gateway::route_job(const HttpRequest& request,
                                std::uint64_t job_id) {
  if (request.method == "DELETE") {
    api::Expected<sched::JobInfo> info = [&] {
      std::lock_guard<std::mutex> lock(session_mutex_);
      return session_->jobs().cancel(job_id);
    }();
    if (!info.ok()) return error_response(info.error());
    HttpResponse response;
    response.body = api::job_info_to_json(info.value()).dump();
    return response;
  }

  // GET, optionally long-polling until the job is terminal.
  const auto params = request.query_params();
  const auto watch = params.find("watch");
  const bool watching =
      watch != params.end() && watch->second != "0" && watch->second != "";
  int wait_cap_ms = config_.watch_cap_ms;
  if (const auto timeout = params.find("timeout_ms");
      timeout != params.end()) {
    try {
      wait_cap_ms = std::min(config_.watch_cap_ms,
                             std::max(0, std::stoi(timeout->second)));
    } catch (const std::exception&) {
      return error_response(api::Error{api::ErrorCode::InvalidArgument,
                                       "malformed timeout_ms", 0});
    }
  }
  int waited_ms = 0;
  for (;;) {
    api::Expected<sched::JobInfo> info = [&] {
      std::lock_guard<std::mutex> lock(session_mutex_);
      return session_->jobs().status(job_id);
    }();
    if (!info.ok()) return error_response(info.error());
    const bool terminal = sched::job_state_terminal(info.value().state);
    if (!watching || terminal || waited_ms >= wait_cap_ms || draining()) {
      HttpResponse response;
      response.body = api::job_info_to_json(info.value()).dump();
      return response;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.watch_interval_ms));
    waited_ms += config_.watch_interval_ms;
  }
}

}  // namespace intooa::gateway
