#pragma once
// Dependency-free HTTP/1.1 primitives for intooa-gateway: an incremental,
// bounded request parser plus response rendering. Deliberately the small
// subset a JSON API needs — identity bodies sized by Content-Length,
// keep-alive and pipelining, no chunked transfer coding (answered 501), no
// multipart, no TLS. The parser is a pure byte machine (feed bytes, take
// requests) so the torture tests drive it without sockets, and every
// failure carries the HTTP status the server should answer before closing:
//
//   400  malformed request line / header / Content-Length
//   413  body larger than the configured cap
//   431  head (request line + headers) larger than the configured cap
//   501  Transfer-Encoding present (chunked bodies unsupported)
//   505  HTTP version other than 1.0/1.1
//
// Robustness expectations match svc::socket's frame reader: torn delivery
// (one byte at a time), several pipelined requests in one read, and
// garbage instead of HTTP must all be handled without overshoot — bytes
// after a complete request are preserved for the next one.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace intooa::gateway {

/// One parsed request. Header names are lowercased (HTTP headers are
/// case-insensitive); values keep their bytes with surrounding whitespace
/// trimmed.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (uppercase by convention)
  std::string target;   ///< raw request target ("/v1/jobs/7?watch=1")
  std::string path;     ///< target up to '?', percent-decoded per segment
  std::string query;    ///< raw bytes after '?' ("" when absent)
  int version_minor = 1;  ///< 0 or 1 (HTTP/1.x)
  std::map<std::string, std::string> headers;
  std::string body;
  bool keep_alive = true;  ///< per Connection header + version default

  /// Case-insensitive header lookup (pass the name lowercased).
  const std::string* header(const std::string& lowercase_name) const;

  /// Decoded key=value pairs of the query string (later keys win).
  std::map<std::string, std::string> query_params() const;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;  ///< extra/override headers
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase ("Not Found", ...); "Unknown" for exotics.
std::string_view status_text(int status);

/// Serializes status line + headers + body. Always emits Content-Length;
/// emits "Connection: close" when `keep_alive` is false.
std::string render_response(const HttpResponse& response, bool keep_alive);

/// Percent-decoding ('+' is NOT treated as space — query values use %20).
/// Malformed escapes are kept verbatim.
std::string url_decode(std::string_view text);

/// Incremental request parser; one instance per connection, reused across
/// keep-alive requests.
class HttpParser {
 public:
  struct Limits {
    std::size_t max_head_bytes = 16 * 1024;
    std::size_t max_body_bytes = 1 << 20;
  };

  enum class Status {
    NeedMore,  ///< no complete request buffered yet
    Ready,     ///< at least one request is complete; call take_request()
    Error,     ///< protocol violation; answer error_status() and close
  };

  HttpParser() = default;
  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Appends bytes and attempts a parse. Once Error is returned the parser
  /// is poisoned (further feeds keep returning Error).
  Status feed(std::string_view data);

  /// Re-examines the buffer without new bytes (after take_request(), for
  /// pipelined successors).
  Status status();

  /// Pops the completed request; only valid when status() == Ready. Bytes
  /// beyond the request stay buffered for the next one.
  HttpRequest take_request();

  /// True when a request has started arriving but is not complete — the
  /// slowloris window the server bounds with its request grace timeout.
  bool mid_request() const { return !buffer_.empty() && !ready_; }

  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

 private:
  Status fail(int status, std::string message);
  /// Parses the head once buffer_ holds the terminating blank line.
  Status parse_head(std::size_t head_end, std::size_t body_start);

  Limits limits_{};
  std::string buffer_;
  bool ready_ = false;
  bool head_parsed_ = false;
  std::size_t body_start_ = 0;
  std::size_t content_length_ = 0;
  HttpRequest pending_;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace intooa::gateway
