// intooa-gateway — the HTTP/JSON front door to an intooa deployment.
// Speaks plain HTTP/1.1 (no TLS, no external dependencies) so dashboards,
// scripts and non-C++ services drive evaluations and campaign jobs with
// curl instead of linking the binary-protocol clients:
//
//   intooa-gateway --listen tcp:127.0.0.1:8080 --evaluator unix:/tmp/i.sock
//       --scheduler unix:/tmp/sched.sock
//
//   curl -s localhost:8080/healthz
//   curl -s -X POST localhost:8080/v1/jobs -d @job.json
//   curl -s localhost:8080/v1/jobs/1?watch=1
//
// docs/GATEWAY.md documents every route, the JSON shapes and the error
// taxonomy mapping. Options:
//
//   --listen ADDR            HTTP endpoint (tcp:HOST:PORT | unix:PATH,
//                            default tcp:127.0.0.1:8080)
//   --evaluator ADDR[,ADDR]  intooa-served endpoints for /v1/evaluations
//                            and /v1/stats (sharded by EvalKey digest)
//   --scheduler ADDR         intooa-schedd endpoint for the /v1/jobs routes
//   --inflight N             pipelined evaluations per endpoint (default 4)
//   --max-connections N      concurrent HTTP connections (default 64)
//   --idle-timeout-ms MS     keep-alive idle limit (default 60000)
//   --request-grace-ms MS    slowloris bound: a request must finish
//                            arriving within this budget (default 10000)
//   --drain-linger-ms MS     after SIGTERM, keep answering 503+Retry-After
//                            this long before exiting (default 0)
//   --retry-after-s S        Retry-After advertised on 503 (default 1)
//   --watch-cap-ms MS        per-request long-poll cap (default 30000)
//   --access-log FILE        one key=value line per request
//   plus the standard telemetry flags (--trace --metrics --log-level).
//
// SIGTERM/SIGINT drain: in-flight requests finish, the listener answers
// 503 + Retry-After for --drain-linger-ms, then the process exits 0. A
// second signal force-exits.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "gateway/gateway.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/version.hpp"

namespace {

std::atomic<int> g_wake_fd{-1};
std::atomic<int> g_signal_count{0};

// Async-signal-safe: one byte on the self-pipe asks the acceptor to drain;
// a second signal while draining force-exits.
void on_signal(int sig) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) > 0) {
    _exit(128 + sig);
  }
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = write(fd, &byte, 1);
  }
}

std::vector<intooa::svc::Address> parse_address_list(const std::string& text) {
  std::vector<intooa::svc::Address> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    if (!item.empty()) out.push_back(intooa::svc::Address::parse(item));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace intooa;
  try {
    const util::Cli cli(argc, argv);
    cli.reject_unknown({"listen", "evaluator", "scheduler", "inflight",
                        "max-connections", "idle-timeout-ms",
                        "request-grace-ms", "drain-linger-ms", "retry-after-s",
                        "watch-cap-ms", "access-log", "trace", "metrics",
                        "log-level"});
    obs::BenchTelemetry telemetry(
        obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));

    gateway::GatewayConfig config;
    config.listen = svc::Address::parse(cli.get("listen", "tcp:127.0.0.1:8080"));
    config.evaluators = parse_address_list(cli.get("evaluator", ""));
    if (const std::string scheduler = cli.get("scheduler", "");
        !scheduler.empty()) {
      config.scheduler = svc::Address::parse(scheduler);
    }
    config.pool.max_inflight = cli.get_size("inflight", 4);
    config.max_connections = cli.get_size("max-connections", 64);
    config.idle_timeout_ms =
        static_cast<int>(cli.get_int("idle-timeout-ms", 60'000));
    config.request_grace_ms =
        static_cast<int>(cli.get_int("request-grace-ms", 10'000));
    config.drain_linger_ms =
        static_cast<int>(cli.get_int("drain-linger-ms", 0));
    config.retry_after_s = static_cast<int>(cli.get_int("retry-after-s", 1));
    config.watch_cap_ms =
        static_cast<int>(cli.get_int("watch-cap-ms", 30'000));
    config.access_log = cli.get("access-log", "");

    gateway::Gateway gateway(std::move(config));
    gateway.bind();
    g_wake_fd.store(gateway.wake_fd(), std::memory_order_relaxed);

    struct sigaction action {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);

    gateway.run();  // returns once drained (plus the linger window)
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "intooa-gateway: %s\n", error.what());
    return 1;
  }
}
