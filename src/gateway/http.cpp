#include "gateway/http.hpp"

#include <algorithm>
#include <cctype>

namespace intooa::gateway {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits one header-block line off `text` starting at `pos`, tolerating
/// both CRLF and bare LF. Returns the line (no terminator) and advances
/// `pos` past it; nullopt when no full line is buffered.
std::optional<std::string_view> next_line(std::string_view text,
                                          std::size_t& pos) {
  const std::size_t lf = text.find('\n', pos);
  if (lf == std::string_view::npos) return std::nullopt;
  std::size_t end = lf;
  if (end > pos && text[end - 1] == '\r') --end;
  std::string_view line = text.substr(pos, end - pos);
  pos = lf + 1;
  return line;
}

}  // namespace

const std::string* HttpRequest::header(
    const std::string& lowercase_name) const {
  const auto it = headers.find(lowercase_name);
  return it == headers.end() ? nullptr : &it->second;
}

std::map<std::string, std::string> HttpRequest::query_params() const {
  std::map<std::string, std::string> params;
  std::size_t start = 0;
  while (start < query.size()) {
    std::size_t amp = query.find('&', start);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(start, amp - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params[url_decode(pair)] = "";
      } else {
        params[url_decode(pair.substr(0, eq))] =
            url_decode(pair.substr(eq + 1));
      }
    }
    start = amp + 1;
  }
  return params;
}

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string render_response(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(status_text(response.status)) + "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  if (!keep_alive) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size() &&
        std::isxdigit(static_cast<unsigned char>(text[i + 1])) &&
        std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
      const auto hex = [](char c) {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return c - 'A' + 10;
      };
      out.push_back(static_cast<char>(hex(text[i + 1]) * 16 +
                                      hex(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

HttpParser::Status HttpParser::fail(int status, std::string message) {
  error_status_ = status;
  error_message_ = std::move(message);
  return Status::Error;
}

HttpParser::Status HttpParser::feed(std::string_view data) {
  if (error_status_ != 0) return Status::Error;
  buffer_.append(data);
  return status();
}

HttpParser::Status HttpParser::status() {
  if (error_status_ != 0) return Status::Error;
  if (ready_) return Status::Ready;

  if (!head_parsed_) {
    // Find the blank line ending the head, accepting CRLFCRLF and LFLF
    // (and the mixed forms a sloppy client may produce).
    std::size_t head_end = std::string::npos;
    std::size_t body_start = 0;
    const std::size_t crlf = buffer_.find("\r\n\r\n");
    const std::size_t lflf = buffer_.find("\n\n");
    if (crlf != std::string::npos &&
        (lflf == std::string::npos || crlf < lflf)) {
      head_end = crlf;
      body_start = crlf + 4;
    } else if (lflf != std::string::npos) {
      head_end = lflf;
      body_start = lflf + 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return fail(431, "request head exceeds " +
                             std::to_string(limits_.max_head_bytes) +
                             " bytes");
      }
      return Status::NeedMore;
    }
    if (head_end > limits_.max_head_bytes) {
      return fail(431, "request head exceeds " +
                           std::to_string(limits_.max_head_bytes) + " bytes");
    }
    const Status parsed = parse_head(head_end, body_start);
    if (parsed == Status::Error) return parsed;
    head_parsed_ = true;
  }

  if (buffer_.size() - body_start_ < content_length_) return Status::NeedMore;
  pending_.body = buffer_.substr(body_start_, content_length_);
  buffer_.erase(0, body_start_ + content_length_);
  ready_ = true;
  head_parsed_ = false;
  return Status::Ready;
}

HttpParser::Status HttpParser::parse_head(std::size_t head_end,
                                          std::size_t body_start) {
  // Copy the head and append a virtual terminator so the last header line
  // (which head_end cuts before its own CRLF) still splits cleanly.
  std::string head_block = buffer_.substr(0, head_end);
  head_block.push_back('\n');
  std::size_t pos = 0;
  const auto request_line = next_line(head_block, pos);
  if (!request_line) {
    return fail(400, "malformed request line");
  }

  // METHOD SP TARGET SP HTTP/1.x — exactly three space-separated tokens.
  const std::string_view line = *request_line;
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400, "malformed request line");
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request.version_minor = 0;
  } else {
    return fail(505, "unsupported version '" + std::string(version) + "'");
  }
  for (const char c : request.method) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      return fail(400, "malformed method");
    }
  }

  // Header block.
  for (;;) {
    const auto header_line = next_line(head_block, pos);
    if (!header_line) break;
    if (header_line->empty()) break;
    const std::size_t colon = header_line->find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header line");
    }
    const std::string_view raw_name = header_line->substr(0, colon);
    // Whitespace inside / after the field name is smuggling per RFC 9112.
    if (raw_name.find(' ') != std::string_view::npos ||
        raw_name.find('\t') != std::string_view::npos) {
      return fail(400, "whitespace in header name");
    }
    request.headers[to_lower(raw_name)] =
        std::string(trim(header_line->substr(colon + 1)));
  }

  if (request.headers.count("transfer-encoding") > 0) {
    return fail(501, "transfer codings are not supported");
  }
  content_length_ = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    const std::string& text = it->second;
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos ||
        text.size() > 12) {
      return fail(400, "malformed Content-Length");
    }
    content_length_ = static_cast<std::size_t>(std::stoull(text));
    if (content_length_ > limits_.max_body_bytes) {
      return fail(413, "body exceeds " +
                           std::to_string(limits_.max_body_bytes) + " bytes");
    }
  }

  // Split the target; decode the path (the query is decoded per-pair by
  // query_params(), since '&' and '=' must be split before decoding).
  const std::size_t question = request.target.find('?');
  if (question == std::string::npos) {
    request.path = url_decode(request.target);
  } else {
    request.path = url_decode(request.target.substr(0, question));
    request.query = request.target.substr(question + 1);
  }

  const std::string* connection = request.header("connection");
  const std::string connection_value =
      connection ? to_lower(*connection) : "";
  if (request.version_minor == 0) {
    request.keep_alive = connection_value == "keep-alive";
  } else {
    request.keep_alive = connection_value != "close";
  }

  pending_ = std::move(request);
  body_start_ = body_start;
  return Status::NeedMore;  // caller's status() continues with the body
}

HttpRequest HttpParser::take_request() {
  ready_ = false;
  HttpRequest request = std::move(pending_);
  pending_ = HttpRequest{};
  body_start_ = 0;
  content_length_ = 0;
  return request;
}

}  // namespace intooa::gateway
