#include "sim/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "la/grid.hpp"
#include "sim/mna.hpp"

namespace intooa::sim {

namespace {
constexpr double kBoltzmann = 1.380649e-23;

double psd_at(const AcSolver& solver, const circuit::Netlist& netlist,
              circuit::NetNode out, double freq_hz,
              const NoiseOptions& options) {
  const double four_kt = 4.0 * kBoltzmann * options.temperature_k;
  double total = 0.0;
  // Resistor thermal noise: S_I = 4kT/R between the element nodes.
  for (const auto& r : netlist.resistors()) {
    const auto z = solver.solve_current(freq_hz, r.n1, r.n2);
    const double zmag2 = std::norm(z[out]);
    total += four_kt / r.ohms * zmag2;
  }
  // Transconductor channel noise: S_I = 4kT*gamma*gm at the output port.
  for (const auto& g : netlist.vccs()) {
    const auto z = solver.solve_current(freq_hz, g.out_pos, g.out_neg);
    const double zmag2 = std::norm(z[out]);
    total += four_kt * options.gm_noise_gamma * std::fabs(g.gm) * zmag2;
  }
  return total;
}
}  // namespace

double output_noise_psd(const circuit::Netlist& netlist, const std::string& out,
                        double freq_hz, const NoiseOptions& options) {
  const auto out_node = netlist.find_node(out);
  if (!out_node) {
    throw std::invalid_argument("output_noise_psd: unknown node " + out);
  }
  const AcSolver solver(netlist);
  return psd_at(solver, netlist, *out_node, freq_hz, options);
}

NoiseResult run_noise(const circuit::Netlist& netlist, const std::string& out,
                      const NoiseOptions& options) {
  const auto out_node = netlist.find_node(out);
  if (!out_node) {
    throw std::invalid_argument("run_noise: unknown node " + out);
  }
  if (!(options.f_lo_hz > 0.0) || !(options.f_hi_hz > options.f_lo_hz)) {
    throw std::invalid_argument("run_noise: bad frequency range");
  }
  const double decades = std::log10(options.f_hi_hz / options.f_lo_hz);
  const std::size_t n = std::max<std::size_t>(
      2, static_cast<std::size_t>(decades * options.points_per_decade) + 1);

  NoiseResult result;
  result.freqs_hz = la::logspace(options.f_lo_hz, options.f_hi_hz, n);
  result.output_psd.reserve(n);
  result.input_psd.reserve(n);

  const AcSolver solver(netlist);
  const bool has_input = !netlist.vsources().empty();
  for (double f : result.freqs_hz) {
    const double sout = psd_at(solver, netlist, *out_node, f, options);
    result.output_psd.push_back(sout);
    double sin_ref = 0.0;
    if (has_input) {
      const double gain2 = std::norm(solver.solve(f)[*out_node]);
      if (gain2 > 1e-24) sin_ref = sout / gain2;
    }
    result.input_psd.push_back(sin_ref);
  }

  // Trapezoidal integration over the (linear) frequency axis.
  for (std::size_t i = 1; i < n; ++i) {
    const double df = result.freqs_hz[i] - result.freqs_hz[i - 1];
    result.integrated_output_v2 +=
        0.5 * (result.output_psd[i] + result.output_psd[i - 1]) * df;
  }
  result.rms_output_v = std::sqrt(result.integrated_output_v2);
  return result;
}

}  // namespace intooa::sim
