#include "sim/transient.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/lu.hpp"
#include "sim/mna.hpp"

namespace intooa::sim {

double Waveform::final_value() const {
  return value.empty() ? 0.0 : value.back();
}

Waveform run_transient(const circuit::Netlist& netlist, const std::string& out,
                       const TransientOptions& options) {
  const auto out_node = netlist.find_node(out);
  if (!out_node) {
    throw std::invalid_argument("run_transient: unknown output node " + out);
  }
  if (!(options.dt > 0.0) || !(options.t_stop > options.dt)) {
    throw std::invalid_argument("run_transient: bad time options");
  }

  const AcSolver stamps(netlist);
  const la::MatrixD& g = stamps.conductance();
  const la::MatrixD& c = stamps.capacitance();
  const std::size_t n = stamps.order();

  // Trapezoidal rule on C x' + G x = b(t):
  //   (2C/dt + G) x_{k+1} = (2C/dt - G) x_k + b_k + b_{k+1}.
  la::MatrixD lhs(n, n), rhs_mat(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double cc = 2.0 * c(i, j) / options.dt;
      lhs(i, j) = cc + g(i, j);
      rhs_mat(i, j) = cc - g(i, j);
    }
  }
  const la::Lu<double> lu(lhs);

  // Step input: sources at full amplitude for every t > 0. The RHS vector
  // of the AC assembly holds exactly the source amplitudes.
  std::vector<double> b(n, 0.0);
  {
    // Reconstruct the source vector from the netlist (node rows carry no
    // independent sources in this element set).
    const std::size_t nv = netlist.node_count() - 1;
    const auto& sources = netlist.vsources();
    for (std::size_t k = 0; k < sources.size(); ++k) {
      b[nv + k] = sources[k].amplitude;
    }
  }

  const auto steps = static_cast<std::size_t>(options.t_stop / options.dt);
  std::vector<double> x(n, 0.0);  // rest: caps discharged, sources at 0
  Waveform wave;
  wave.time.reserve(steps + 1);
  wave.value.reserve(steps + 1);
  wave.time.push_back(0.0);
  wave.value.push_back(0.0);

  std::vector<double> rhs(n);
  for (std::size_t k = 1; k <= steps; ++k) {
    const auto cx = rhs_mat.matvec(x);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = cx[i] + 2.0 * b[i];
    x = lu.solve(rhs);
    wave.time.push_back(static_cast<double>(k) * options.dt);
    wave.value.push_back(*out_node == 0 ? 0.0 : x[*out_node - 1]);
  }
  return wave;
}

StepMetrics step_metrics(const Waveform& waveform, double tolerance) {
  StepMetrics metrics;
  if (waveform.value.size() < 2) return metrics;
  // A diverged (unstable) response: report "never settled" rather than
  // nonsense derived from NaN/overflowed samples. 1e9 is far beyond any
  // physical small-signal excursion of these 1-V-scale steps.
  for (double v : waveform.value) {
    if (!std::isfinite(v) || std::fabs(v) > 1e9) {
      metrics.settled = false;
      metrics.settling_time_s = waveform.time.back();
      metrics.overshoot = std::numeric_limits<double>::infinity();
      return metrics;
    }
  }
  const double final = waveform.final_value();
  const double scale = std::fabs(final) > 1e-12 ? std::fabs(final) : 1.0;

  double peak = waveform.value.front();
  std::size_t last_outside = 0;
  for (std::size_t i = 0; i < waveform.value.size(); ++i) {
    peak = std::max(peak, waveform.value[i]);
    if (std::fabs(waveform.value[i] - final) > tolerance * scale) {
      last_outside = i;
    }
  }
  metrics.overshoot = std::max(0.0, (peak - final) / scale);
  metrics.settled = last_outside + 1 < waveform.value.size();
  metrics.settling_time_s =
      metrics.settled ? waveform.time[last_outside + 1] : waveform.time.back();
  return metrics;
}

}  // namespace intooa::sim
