#pragma once
// Transient (time-domain) simulation of the linear MNA system with the
// trapezoidal rule — the .TRAN analysis of the Hspice stand-in. Primary
// use: closed-loop step responses of synthesized op-amps (unity-gain
// follower), yielding settling time and overshoot, the time-domain
// counterparts of the phase-margin constraint.

#include <vector>

#include "circuit/netlist.hpp"

namespace intooa::sim {

/// Transient run options. The independent voltage sources step from 0 to
/// their amplitude at t = 0 (initial condition: all states at rest).
struct TransientOptions {
  double t_stop = 1e-5;   ///< end time [s]
  double dt = 1e-9;       ///< fixed trapezoidal step [s]
};

/// Sampled waveform of one node.
struct Waveform {
  std::vector<double> time;
  std::vector<double> value;

  /// Value at the last sample.
  double final_value() const;
};

/// Runs the transient analysis and returns node `out`'s waveform.
/// Throws std::invalid_argument for unknown nodes/bad options and
/// la::SingularMatrixError for structurally singular systems.
Waveform run_transient(const circuit::Netlist& netlist, const std::string& out,
                       const TransientOptions& options = {});

/// Step-response metrics relative to the response's own final value.
struct StepMetrics {
  double settling_time_s = 0.0;  ///< last excursion outside the tolerance band
  double overshoot = 0.0;        ///< (peak - final) / |final|, >= 0
  bool settled = false;          ///< response entered and stayed in the band
};

/// Computes settling (to within `tolerance` of the final value, e.g. 0.01
/// for 1%) and overshoot of a step-response waveform.
StepMetrics step_metrics(const Waveform& waveform, double tolerance = 0.01);

}  // namespace intooa::sim
