#pragma once
// AC sweep and op-amp metric extraction: open-loop gain, gain-bandwidth
// product, phase margin (from the unwrapped phase at the unity-gain
// crossing) and static power. One call to `evaluate_opamp` is one
// "simulation" in the paper's cost accounting.

#include <complex>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/spec.hpp"

namespace intooa::sim {

/// Frequency-sweep options.
struct AcOptions {
  double f_min_hz = 1e-2;
  double f_max_hz = 1e10;
  std::size_t points_per_decade = 16;
  /// Reject designs whose network has right-half-plane natural
  /// frequencies (open-loop instability): their AC response is
  /// mathematically defined but physically meaningless.
  bool check_stability = true;
};

/// Thrown by run_ac when the stability pre-check finds a right-half-plane
/// natural frequency; evaluate_opamp converts it into an invalid
/// Performance.
class UnstableCircuitError : public std::runtime_error {
 public:
  explicit UnstableCircuitError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Raw AC sweep of one output node.
struct AcSweep {
  std::vector<double> freqs_hz;
  std::vector<std::complex<double>> transfer;  ///< V(out)/V(source), source amplitude 1
};

/// Runs the AC sweep of node `out` over the option grid. Throws
/// la::SingularMatrixError if the netlist is singular.
AcSweep run_ac(const circuit::Netlist& netlist, const std::string& out,
               const AcOptions& options = {});

/// Unwrapped phase in degrees, starting from the principal phase of the
/// first point; adjacent points are assumed less than 180 degrees apart
/// (guaranteed by a dense log grid on these low-order networks).
std::vector<double> unwrapped_phase_deg(const AcSweep& sweep);

/// Extracts op-amp metrics from an AC sweep:
///   gain_db  = 20 log10 |H| at the lowest frequency,
///   gbw_hz   = first unity-magnitude crossing (log-interpolated),
///   pm_deg   = 180 - (phase lag accumulated from DC to the LAST unity
///              crossing). When resonant peaking lifts |H| above 1 again
///              after the first crossing, the last crossing carries the
///              true stability margin; with a single crossing the
///              definitions coincide.
/// `power_w` is filled from the netlist bias model at `vdd`.
/// Failure modes (invalid result): DC gain <= 0 dB, no unity crossing
/// below f_max, or non-finite response anywhere on the grid.
circuit::Performance extract_performance(const AcSweep& sweep,
                                         double power_w);

/// Convenience: sweep + extract + power in one call. Returns an invalid
/// Performance (with `failure` set) instead of throwing when the netlist is
/// singular at some frequency.
circuit::Performance evaluate_opamp(const circuit::Netlist& netlist,
                                    double vdd,
                                    const std::string& out = "vout",
                                    const AcOptions& options = {});

}  // namespace intooa::sim
