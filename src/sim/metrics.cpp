#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "la/eigen.hpp"
#include "la/grid.hpp"
#include "la/lu.hpp"
#include "sim/mna.hpp"

namespace intooa::sim {

AcSweep run_ac(const circuit::Netlist& netlist, const std::string& out,
               const AcOptions& options) {
  const auto out_node = netlist.find_node(out);
  if (!out_node) {
    throw std::invalid_argument("run_ac: unknown output node " + out);
  }
  if (!(options.f_min_hz > 0.0) || !(options.f_max_hz > options.f_min_hz)) {
    throw std::invalid_argument("run_ac: bad frequency range");
  }
  const double decades = std::log10(options.f_max_hz / options.f_min_hz);
  const std::size_t n = std::max<std::size_t>(
      2, static_cast<std::size_t>(decades * options.points_per_decade) + 1);

  AcSweep sweep;
  sweep.freqs_hz = la::logspace(options.f_min_hz, options.f_max_hz, n);

  const AcSolver solver(netlist);
  const auto poles = solver.poles();
  if (options.check_stability && !la::is_stable(poles)) {
    throw UnstableCircuitError("open-loop unstable (right-half-plane pole)");
  }

  // Refine the grid near every resonant (complex) natural frequency:
  // underdamped pole pairs can produce magnitude peaks far narrower than
  // the log grid spacing, and those peaks decide whether |H| re-crosses
  // unity (phase-margin validity).
  for (const auto& p : poles) {
    const double f_res = std::abs(p.imag()) / (2.0 * std::numbers::pi);
    if (f_res <= options.f_min_hz || f_res >= options.f_max_hz) continue;
    for (double factor : {0.95, 1.0, 1.05}) {
      sweep.freqs_hz.push_back(f_res * factor);
    }
  }
  std::sort(sweep.freqs_hz.begin(), sweep.freqs_hz.end());
  sweep.freqs_hz.erase(
      std::unique(sweep.freqs_hz.begin(), sweep.freqs_hz.end()),
      sweep.freqs_hz.end());

  sweep.transfer.reserve(sweep.freqs_hz.size());
  for (double f : sweep.freqs_hz) {
    sweep.transfer.push_back(solver.solve(f)[*out_node]);
  }
  return sweep;
}

std::vector<double> unwrapped_phase_deg(const AcSweep& sweep) {
  std::vector<double> phase(sweep.transfer.size());
  if (sweep.transfer.empty()) return phase;
  constexpr double kRad2Deg = 180.0 / std::numbers::pi;
  phase[0] = std::arg(sweep.transfer[0]) * kRad2Deg;
  for (std::size_t i = 1; i < sweep.transfer.size(); ++i) {
    // Principal-value phase increment between consecutive grid points.
    const std::complex<double> ratio =
        sweep.transfer[i] /
        (sweep.transfer[i - 1] == std::complex<double>(0.0)
             ? std::complex<double>(1e-300)
             : sweep.transfer[i - 1]);
    phase[i] = phase[i - 1] + std::arg(ratio) * kRad2Deg;
  }
  return phase;
}

circuit::Performance extract_performance(const AcSweep& sweep,
                                         double power_w) {
  circuit::Performance perf;
  perf.power_w = power_w;

  if (sweep.transfer.size() < 2) {
    perf.failure = "sweep too short";
    return perf;
  }
  for (const auto& h : sweep.transfer) {
    if (!std::isfinite(h.real()) || !std::isfinite(h.imag())) {
      perf.failure = "non-finite response";
      return perf;
    }
  }

  const double dc_mag = std::abs(sweep.transfer.front());
  if (!(dc_mag > 1.0)) {
    perf.failure = "dc gain below 0 dB";
    return perf;
  }
  perf.gain_db = 20.0 * std::log10(dc_mag);

  // First |H| = 1 crossing from low frequency: the gain-bandwidth product.
  std::size_t cross = 0;
  for (std::size_t i = 1; i < sweep.transfer.size(); ++i) {
    if (std::abs(sweep.transfer[i]) < 1.0) {
      cross = i;
      break;
    }
  }
  if (cross == 0) {
    perf.failure = "no unity-gain crossing below f_max";
    return perf;
  }

  // Interpolated crossing between grid indices hi-1 and hi.
  const std::vector<double> phase = unwrapped_phase_deg(sweep);
  auto crossing = [&](std::size_t hi) {
    const double m0 = std::log10(std::abs(sweep.transfer[hi - 1]));
    const double m1 = std::log10(std::abs(sweep.transfer[hi]));
    const double t = m0 / (m0 - m1);  // fraction of the log-f interval
    const double lf0 = std::log10(sweep.freqs_hz[hi - 1]);
    const double lf1 = std::log10(sweep.freqs_hz[hi]);
    const double freq = std::pow(10.0, lf0 + t * (lf1 - lf0));
    const double ph = phase[hi - 1] + t * (phase[hi] - phase[hi - 1]);
    return std::pair(freq, ph);
  };
  perf.gbw_hz = crossing(cross).first;

  // Phase margin belongs to the LAST unity crossing: resonant peaking of
  // underdamped non-dominant poles can push |H| back above 1 after the
  // first crossing, and a first-crossing "margin" would miss the
  // encirclement entirely (the closed loop would be unstable despite a
  // healthy-looking PM). With a single crossing the two definitions
  // coincide.
  std::size_t last_above = cross - 1;
  for (std::size_t i = cross; i < sweep.transfer.size(); ++i) {
    if (std::abs(sweep.transfer[i]) >= 1.0) last_above = i;
  }
  const std::size_t pm_cross = last_above + 1;
  if (pm_cross >= sweep.transfer.size()) {
    perf.failure = "gain re-crosses unity at f_max";
    return perf;
  }
  const double phase_at_crossing = crossing(pm_cross).second;
  const double lag = phase.front() - phase_at_crossing;  // > 0 for phase lag
  perf.pm_deg = 180.0 - lag;

  perf.valid = true;
  return perf;
}

circuit::Performance evaluate_opamp(const circuit::Netlist& netlist,
                                    double vdd, const std::string& out,
                                    const AcOptions& options) {
  try {
    const AcSweep sweep = run_ac(netlist, out, options);
    return extract_performance(sweep, netlist.static_power(vdd));
  } catch (const la::SingularMatrixError& e) {
    circuit::Performance perf;
    perf.power_w = netlist.static_power(vdd);
    perf.failure = std::string("singular MNA system: ") + e.what();
    return perf;
  } catch (const UnstableCircuitError& e) {
    circuit::Performance perf;
    perf.power_w = netlist.static_power(vdd);
    perf.failure = e.what();
    return perf;
  } catch (const std::runtime_error& e) {
    // Eigen-solver convergence failure and similar numerical pathologies:
    // treat as an invalid design rather than aborting a campaign.
    circuit::Performance perf;
    perf.power_w = netlist.static_power(vdd);
    perf.failure = std::string("numerical failure: ") + e.what();
    return perf;
  }
}

}  // namespace intooa::sim
