#include "sim/mna.hpp"

#include <numbers>
#include <stdexcept>

#include "la/eigen.hpp"
#include "la/lu.hpp"
#include "obs/span.hpp"

namespace intooa::sim {

namespace {
// MNA row/column of a node: ground (node 0) is eliminated; node k > 0 maps
// to k - 1. Returns npos-like sentinel for ground.
constexpr std::size_t kGround = static_cast<std::size_t>(-1);

std::size_t mna_index(circuit::NetNode node) {
  return node == 0 ? kGround : node - 1;
}
}  // namespace

AcSolver::AcSolver(const circuit::Netlist& netlist)
    : node_count_(netlist.node_count()) {
  if (node_count_ < 2) {
    throw std::invalid_argument("AcSolver: netlist has no non-ground nodes");
  }
  const std::size_t nv = node_count_ - 1;
  order_ = nv + netlist.vsources().size() + netlist.vcvs().size();
  g_ = la::MatrixD(order_, order_);
  c_ = la::MatrixD(order_, order_);
  rhs_.assign(order_, 0.0);

  auto stamp_conductance = [&](la::MatrixD& m, circuit::NetNode n1,
                               circuit::NetNode n2, double value) {
    const std::size_t i = mna_index(n1);
    const std::size_t j = mna_index(n2);
    if (i != kGround) m(i, i) += value;
    if (j != kGround) m(j, j) += value;
    if (i != kGround && j != kGround) {
      m(i, j) -= value;
      m(j, i) -= value;
    }
  };

  for (const auto& r : netlist.resistors()) {
    stamp_conductance(g_, r.n1, r.n2, 1.0 / r.ohms);
  }
  for (const auto& cap : netlist.capacitors()) {
    stamp_conductance(c_, cap.n1, cap.n2, cap.farads);
  }
  for (const auto& v : netlist.vccs()) {
    // Current gm*(Vc+ - Vc-) is injected INTO out_pos and drawn from
    // out_neg; KCL rows accumulate currents *leaving* the node.
    const std::size_t op = mna_index(v.out_pos);
    const std::size_t on = mna_index(v.out_neg);
    const std::size_t cp = mna_index(v.ctrl_pos);
    const std::size_t cn = mna_index(v.ctrl_neg);
    auto stamp = [&](std::size_t row, std::size_t col, double val) {
      if (row != kGround && col != kGround) g_(row, col) += val;
    };
    stamp(op, cp, -v.gm);
    stamp(op, cn, +v.gm);
    stamp(on, cp, +v.gm);
    stamp(on, cn, -v.gm);
  }
  const auto& sources = netlist.vsources();
  for (std::size_t k = 0; k < sources.size(); ++k) {
    const auto& src = sources[k];
    const std::size_t row = nv + k;  // branch-current unknown
    const std::size_t p = mna_index(src.pos);
    const std::size_t n = mna_index(src.neg);
    // Branch current flows from pos through the source to neg.
    if (p != kGround) {
      g_(p, row) += 1.0;
      g_(row, p) += 1.0;
    }
    if (n != kGround) {
      g_(n, row) -= 1.0;
      g_(row, n) -= 1.0;
    }
    rhs_[row] = src.amplitude;
  }
  const auto& controlled = netlist.vcvs();
  for (std::size_t k = 0; k < controlled.size(); ++k) {
    const auto& e = controlled[k];
    const std::size_t row = nv + sources.size() + k;  // branch current
    const std::size_t op = mna_index(e.out_pos);
    const std::size_t on = mna_index(e.out_neg);
    const std::size_t cp = mna_index(e.ctrl_pos);
    const std::size_t cn = mna_index(e.ctrl_neg);
    if (op != kGround) {
      g_(op, row) += 1.0;
      g_(row, op) += 1.0;
    }
    if (on != kGround) {
      g_(on, row) -= 1.0;
      g_(row, on) -= 1.0;
    }
    // Branch equation: V(op) - V(on) - gain*(V(cp) - V(cn)) = 0.
    if (cp != kGround) g_(row, cp) -= e.gain;
    if (cn != kGround) g_(row, cn) += e.gain;
  }
}

namespace {
std::vector<std::complex<double>> node_voltages_from(
    const std::vector<std::complex<double>>& x, std::size_t node_count) {
  std::vector<std::complex<double>> voltages(node_count);
  voltages[0] = 0.0;
  for (std::size_t n = 1; n < node_count; ++n) voltages[n] = x[n - 1];
  return voltages;
}
}  // namespace

std::vector<std::complex<double>> AcSolver::solve(double freq_hz) const {
  INTOOA_SPAN("sim.mna_solve");
  if (freq_hz < 0.0) throw std::invalid_argument("AcSolver: negative frequency");
  const double omega = 2.0 * std::numbers::pi * freq_hz;
  la::MatrixC a(order_, order_);
  for (std::size_t i = 0; i < order_; ++i) {
    for (std::size_t j = 0; j < order_; ++j) {
      a(i, j) = {g_(i, j), omega * c_(i, j)};
    }
  }
  std::vector<std::complex<double>> b(order_);
  for (std::size_t i = 0; i < order_; ++i) b[i] = rhs_[i];

  const la::Lu<std::complex<double>> lu(std::move(a));
  return node_voltages_from(lu.solve(b), node_count_);
}

std::vector<std::complex<double>> AcSolver::solve_current(
    double freq_hz, circuit::NetNode inj_pos, circuit::NetNode inj_neg) const {
  INTOOA_SPAN("sim.mna_solve");
  if (freq_hz < 0.0) throw std::invalid_argument("AcSolver: negative frequency");
  if (inj_pos >= node_count_ || inj_neg >= node_count_) {
    throw std::out_of_range("AcSolver::solve_current: bad node");
  }
  const double omega = 2.0 * std::numbers::pi * freq_hz;
  la::MatrixC a(order_, order_);
  for (std::size_t i = 0; i < order_; ++i) {
    for (std::size_t j = 0; j < order_; ++j) {
      a(i, j) = {g_(i, j), omega * c_(i, j)};
    }
  }
  // Independent sources zeroed (voltage sources become shorts via their
  // branch equations with 0 RHS); inject the unit current.
  std::vector<std::complex<double>> b(order_, 0.0);
  const std::size_t ip = mna_index(inj_pos);
  const std::size_t in = mna_index(inj_neg);
  if (ip != kGround) b[ip] += 1.0;
  if (in != kGround) b[in] -= 1.0;

  const la::Lu<std::complex<double>> lu(std::move(a));
  return node_voltages_from(lu.solve(b), node_count_);
}

std::vector<std::complex<double>> AcSolver::poles() const {
  return la::natural_frequencies(g_, c_);
}

std::complex<double> AcSolver::node_voltage(double freq_hz,
                                            circuit::NetNode node) const {
  if (node >= node_count_) {
    throw std::out_of_range("AcSolver::node_voltage: bad node");
  }
  return solve(freq_hz)[node];
}

}  // namespace intooa::sim
