#pragma once
// Small-signal noise analysis (the .NOISE analysis of the Hspice
// stand-in). Every resistor contributes thermal current noise 4kT/R and
// every transconductor channel noise 4*k*T*gamma*gm; each source's
// current PSD is propagated to the output through the transimpedance
// obtained from the adjoint-free solve_current() of the MNA solver.
// Output-referred and input-referred spectra plus the integrated RMS
// output noise are reported.

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace intooa::sim {

/// Noise-analysis options.
struct NoiseOptions {
  double f_lo_hz = 1.0;
  double f_hi_hz = 1e8;
  std::size_t points_per_decade = 10;
  double temperature_k = 300.0;
  /// Channel-noise excess factor gamma (long-channel theory: 2/3; short
  /// channels run hotter).
  double gm_noise_gamma = 0.7;
};

/// Result of a noise sweep.
struct NoiseResult {
  std::vector<double> freqs_hz;
  std::vector<double> output_psd;  ///< V^2/Hz at the output node
  std::vector<double> input_psd;   ///< V^2/Hz referred to the input source
                                   ///< (0 where the gain is ~0 or no source)
  double integrated_output_v2 = 0.0;  ///< integral of output_psd over the band
  double rms_output_v = 0.0;          ///< sqrt of the integral
};

/// Output noise PSD [V^2/Hz] at node `out` and frequency `freq_hz`.
double output_noise_psd(const circuit::Netlist& netlist, const std::string& out,
                        double freq_hz, const NoiseOptions& options = {});

/// Full noise sweep of node `out`. Input referral uses the netlist's
/// independent voltage source(s) as the input.
NoiseResult run_noise(const circuit::Netlist& netlist, const std::string& out,
                      const NoiseOptions& options = {});

}  // namespace intooa::sim
