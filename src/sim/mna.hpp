#pragma once
// Modified Nodal Analysis AC solver — the substrate that replaces Hspice's
// .AC analysis for this project's linear(ized) netlists (see DESIGN.md,
// substitution table). Unknowns are the non-ground node voltages plus one
// branch current per independent voltage source; the system
//
//   (G + j*omega*C) x = b
//
// is assembled once as real G and C matrices and solved per frequency with
// complex LU.

#include <complex>
#include <vector>

#include "circuit/netlist.hpp"
#include "la/matrix.hpp"

namespace intooa::sim {

/// AC small-signal solver bound to one netlist.
class AcSolver {
 public:
  /// Assembles the stamps. Throws std::invalid_argument when the netlist
  /// has no nodes besides ground.
  explicit AcSolver(const circuit::Netlist& netlist);

  /// Number of MNA unknowns (node voltages + source branch currents).
  std::size_t order() const { return order_; }

  /// Solves at frequency `freq_hz` (>= 0) and returns the complex voltage
  /// of every netlist node, indexed by NetNode (ground = exactly 0).
  /// Throws la::SingularMatrixError when the system is singular at this
  /// frequency.
  std::vector<std::complex<double>> solve(double freq_hz) const;

  /// Solves with the independent sources zeroed and a unit AC current
  /// injected into `inj_pos` and drawn from `inj_neg` — the transimpedance
  /// response used by the noise analysis to propagate element noise
  /// currents to the output.
  std::vector<std::complex<double>> solve_current(double freq_hz,
                                                  circuit::NetNode inj_pos,
                                                  circuit::NetNode inj_neg) const;

  /// Convenience: voltage of one node at one frequency.
  std::complex<double> node_voltage(double freq_hz,
                                    circuit::NetNode node) const;

  /// Natural frequencies (poles) of the network with independent sources
  /// zeroed: the s_k solving det(G + s C) = 0 over the capacitive modes.
  /// Used to reject open-loop-unstable designs (RHP poles) whose AC
  /// response would be physically meaningless.
  std::vector<std::complex<double>> poles() const;

  /// The assembled real conductance / capacitance stamp matrices.
  const la::MatrixD& conductance() const { return g_; }
  const la::MatrixD& capacitance() const { return c_; }

 private:
  std::size_t node_count_;  // includes ground
  std::size_t order_;
  la::MatrixD g_;  // conductance stamps (real part at DC)
  la::MatrixD c_;  // capacitance stamps (scaled by j*omega)
  std::vector<double> rhs_;
};

}  // namespace intooa::sim
