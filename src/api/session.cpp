#include "api/session.hpp"

#include "circuit/topology.hpp"
#include "core/eval_key.hpp"

namespace intooa::api {

Session::Session(SessionConfig config)
    : config_(std::move(config)),
      evaluations_(*this),
      jobs_(*this),
      stats_(*this) {}

Session::~Session() { close(); }

void Session::close() {
  std::unique_ptr<svc::ClientPool> pool;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool = std::move(pool_);
  }
  if (pool) pool->close();
  drop_stats_client();
  drop_job_client();
}

Expected<svc::ClientPool*> Session::eval_pool() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_) return pool_.get();
  if (config_.evaluators.empty()) {
    return Error{ErrorCode::InvalidArgument,
                 "session has no evaluator endpoints configured", 0};
  }
  try {
    pool_ = std::make_unique<svc::ClientPool>(config_.evaluators,
                                              config_.pool);
  } catch (const std::exception& e) {
    return error_from_exception(e);
  }
  return pool_.get();
}

Expected<svc::Client*> Session::stats_client() {
  if (stats_client_ && stats_client_->connected()) return stats_client_.get();
  if (config_.evaluators.empty()) {
    return Error{ErrorCode::InvalidArgument,
                 "session has no evaluator endpoints configured", 0};
  }
  try {
    auto client = std::make_unique<svc::Client>();
    client->connect(config_.evaluators.front());
    stats_client_ = std::move(client);
  } catch (const std::exception& e) {
    return error_from_exception(e);
  }
  return stats_client_.get();
}

Expected<sched::JobClient*> Session::job_client() {
  if (job_client_ && job_client_->connected()) return job_client_.get();
  if (!config_.scheduler) {
    return Error{ErrorCode::InvalidArgument,
                 "session has no scheduler endpoint configured", 0};
  }
  try {
    auto client = std::make_unique<sched::JobClient>();
    client->connect(*config_.scheduler);
    job_client_ = std::move(client);
  } catch (const std::exception& e) {
    return error_from_exception(e);
  }
  return job_client_.get();
}

void Session::drop_job_client() { job_client_.reset(); }
void Session::drop_stats_client() { stats_client_.reset(); }

// ---- Evaluations ----

Expected<std::uint64_t> Evaluations::shard_digest(
    const svc::EvalRequest& request) {
  try {
    const core::EvalKeyContext keys(request.eval_context(), request.sizing);
    const circuit::Topology topology =
        circuit::Topology::from_index(request.topology_index);
    return keys.key_for(topology).digest;
  } catch (const std::exception& e) {
    return error_from_exception(e);
  }
}

Expected<EvaluationOutcome> Evaluations::evaluate(
    const svc::EvalRequest& request) {
  Expected<std::uint64_t> digest = shard_digest(request);
  if (!digest.ok()) return digest.error();
  Expected<svc::ClientPool*> pool = session_.eval_pool();
  if (!pool.ok()) return pool.error();
  std::optional<svc::EvalResponse> response =
      pool.value()->evaluate(request, digest.value());
  if (!response) {
    return Error{ErrorCode::Unavailable,
                 "evaluation not served: every evaluator endpoint is down "
                 "or the request failed server-side",
                 0};
  }
  EvaluationOutcome outcome;
  outcome.served_from = response->served_from;
  outcome.record_payload = std::move(response->record_payload);
  auto decoded = store::decode_record(outcome.record_payload);
  if (!decoded) {
    return Error{ErrorCode::Protocol,
                 "evaluation record bytes do not decode", 0};
  }
  outcome.record = std::move(*decoded);
  return outcome;
}

// ---- Jobs ----

template <typename T, typename Op>
Expected<T> Jobs::with_client(Op&& op) {
  Expected<sched::JobClient*> client = session_.job_client();
  if (!client.ok()) return client.error();
  try {
    return op(*client.value());
  } catch (const std::exception& e) {
    // Drop the connection on any failure: a transport error leaves the
    // stream unusable and a protocol error leaves it unsynchronized; the
    // next call redials cleanly either way.
    session_.drop_job_client();
    return error_from_exception(e);
  }
}

Expected<std::uint64_t> Jobs::submit(const sched::JobSpec& spec) {
  return with_client<std::uint64_t>(
      [&](sched::JobClient& client) -> Expected<std::uint64_t> {
        const sched::SubmitOutcome outcome = client.submit(spec);
        if (!outcome.accepted) {
          return Error{ErrorCode::QueueFull, "scheduler job queue is full",
                       outcome.retry_after_ms};
        }
        return outcome.job_id;
      });
}

Expected<sched::JobInfo> Jobs::status(std::uint64_t job_id) {
  return with_client<sched::JobInfo>(
      [&](sched::JobClient& client) -> Expected<sched::JobInfo> {
        const std::optional<sched::JobInfo> info = client.status(job_id);
        if (!info) {
          return Error{ErrorCode::NotFound,
                       "unknown job " + std::to_string(job_id), 0};
        }
        return *info;
      });
}

Expected<sched::JobInfo> Jobs::cancel(std::uint64_t job_id) {
  return with_client<sched::JobInfo>(
      [&](sched::JobClient& client) -> Expected<sched::JobInfo> {
        const std::optional<sched::JobInfo> info = client.cancel(job_id);
        if (!info) {
          return Error{ErrorCode::NotFound,
                       "unknown job " + std::to_string(job_id), 0};
        }
        return *info;
      });
}

Expected<std::vector<sched::JobInfo>> Jobs::list(const std::string& tenant) {
  return with_client<std::vector<sched::JobInfo>>(
      [&](sched::JobClient& client) -> Expected<std::vector<sched::JobInfo>> {
        return client.list(tenant);
      });
}

Expected<bool> Jobs::ping() {
  return with_client<bool>(
      [&](sched::JobClient& client) -> Expected<bool> {
        return client.ping();
      });
}

// ---- Stats ----

Expected<std::string> Stats::fetch_json(bool include_flight) {
  Expected<svc::Client*> client = session_.stats_client();
  if (!client.ok()) return client.error();
  try {
    return client.value()->stats_json(include_flight,
                                      session_.config_.stats_timeout_ms);
  } catch (const std::exception& e) {
    session_.drop_stats_client();
    return error_from_exception(e);
  }
}

}  // namespace intooa::api
