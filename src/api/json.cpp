#include "api/json.hpp"

#include <cmath>
#include <cstdio>

#include "circuit/spec.hpp"

namespace intooa::api {

namespace {

Error field_error(const std::string& what) {
  return Error{ErrorCode::InvalidArgument, what, 0};
}

/// Reads a non-negative integral number member into `out`; returns false
/// (naming the field in `error`) on a wrong type or a fractional/negative
/// value. A missing member leaves `out` untouched and succeeds.
bool read_u64(const obs::Json& object, const std::string& key,
              std::uint64_t& out, std::string& error) {
  if (!object.contains(key)) return true;
  const obs::Json& value = object.at(key);
  if (!value.is_number()) {
    error = "field '" + key + "' must be a number";
    return false;
  }
  const double d = value.as_number();
  // Range-check before casting: float→integer conversion of a value
  // outside [0, 2^64) (an attacker-supplied 1e300, or NaN) is undefined
  // behavior, and these fields arrive in gateway request bodies.
  if (!(d >= 0.0) || d >= 18446744073709551616.0 || d != std::floor(d)) {
    error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool read_string(const obs::Json& object, const std::string& key,
                 std::string& out, std::string& error) {
  if (!object.contains(key)) return true;
  const obs::Json& value = object.at(key);
  if (!value.is_string()) {
    error = "field '" + key + "' must be a string";
    return false;
  }
  out = value.as_string();
  return true;
}

}  // namespace

std::string fnv1a_hex(std::string_view data) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(hash));
  return hex;
}

obs::Json error_to_json(const Error& error) {
  obs::Json body = obs::Json::object();
  body["code"] = obs::Json(std::string(error_code_name(error.code)));
  body["message"] = obs::Json(error.message);
  body["retryable"] = obs::Json(error.retryable());
  if (error.retry_after_ms > 0) {
    body["retry_after_ms"] =
        obs::Json(static_cast<unsigned long long>(error.retry_after_ms));
  }
  obs::Json root = obs::Json::object();
  root["error"] = std::move(body);
  return root;
}

Error error_from_json(const obs::Json& root) {
  Error error{ErrorCode::Internal, "", 0};
  if (!root.is_object() || !root.contains("error") ||
      !root.at("error").is_object()) {
    error.message = "malformed error body";
    return error;
  }
  const obs::Json& body = root.at("error");
  if (body.contains("code") && body.at("code").is_string()) {
    if (const auto code = error_code_from_name(body.at("code").as_string())) {
      error.code = *code;
    }
  }
  if (body.contains("message") && body.at("message").is_string()) {
    error.message = body.at("message").as_string();
  }
  if (body.contains("retry_after_ms") &&
      body.at("retry_after_ms").is_number()) {
    const double ms = body.at("retry_after_ms").as_number();
    if (ms >= 0.0 && ms < 4294967296.0) {
      error.retry_after_ms = static_cast<std::uint32_t>(ms);
    }
  }
  return error;
}

obs::Json job_spec_to_json(const sched::JobSpec& spec) {
  obs::Json params = obs::Json::object();
  params["runs"] = obs::Json(static_cast<unsigned long long>(
      spec.params.runs));
  params["init_topologies"] = obs::Json(static_cast<unsigned long long>(
      spec.params.init_topologies));
  params["iterations"] = obs::Json(static_cast<unsigned long long>(
      spec.params.iterations));
  params["pool"] = obs::Json(static_cast<unsigned long long>(
      spec.params.pool));
  params["sizing_init"] = obs::Json(static_cast<unsigned long long>(
      spec.params.sizing_init));
  params["sizing_iterations"] = obs::Json(static_cast<unsigned long long>(
      spec.params.sizing_iterations));
  params["seed"] = obs::Json(static_cast<unsigned long long>(
      spec.params.seed));

  obs::Json specs = obs::Json::array();
  for (const std::string& name : spec.specs) specs.push_back(obs::Json(name));

  obs::Json root = obs::Json::object();
  root["tenant"] = obs::Json(spec.tenant);
  root["priority"] = obs::Json(static_cast<unsigned long long>(
      spec.priority));
  root["method"] = obs::Json(spec.method);
  root["specs"] = std::move(specs);
  root["params"] = std::move(params);
  return root;
}

Expected<sched::JobSpec> job_spec_from_json(const obs::Json& root) {
  if (!root.is_object()) return field_error("job spec must be a JSON object");
  sched::JobSpec spec;
  std::string error;
  for (const auto& [key, value] : root.members()) {
    if (key != "tenant" && key != "priority" && key != "method" &&
        key != "specs" && key != "params") {
      return field_error("unknown job field '" + key + "'");
    }
  }
  if (!read_string(root, "tenant", spec.tenant, error)) {
    return field_error(error);
  }
  if (!read_string(root, "method", spec.method, error)) {
    return field_error(error);
  }
  std::uint64_t priority = spec.priority;
  if (!read_u64(root, "priority", priority, error)) return field_error(error);
  spec.priority = static_cast<std::uint32_t>(priority);
  if (root.contains("specs")) {
    const obs::Json& specs = root.at("specs");
    if (!specs.is_array()) {
      return field_error("field 'specs' must be an array of strings");
    }
    spec.specs.clear();
    for (const obs::Json& item : specs.items()) {
      if (!item.is_string()) {
        return field_error("field 'specs' must be an array of strings");
      }
      spec.specs.push_back(item.as_string());
    }
  }
  if (root.contains("params")) {
    const obs::Json& params = root.at("params");
    if (!params.is_object()) {
      return field_error("field 'params' must be a JSON object");
    }
    for (const auto& [key, value] : params.members()) {
      if (key != "runs" && key != "init_topologies" && key != "iterations" &&
          key != "pool" && key != "sizing_init" &&
          key != "sizing_iterations" && key != "seed") {
        return field_error("unknown params field '" + key + "'");
      }
    }
    std::uint64_t n = 0;
    auto assign = [&](const char* key, auto& field) {
      n = static_cast<std::uint64_t>(field);
      if (!read_u64(params, key, n, error)) return false;
      field = static_cast<std::remove_reference_t<decltype(field)>>(n);
      return true;
    };
    if (!assign("runs", spec.params.runs)) return field_error(error);
    if (!assign("init_topologies", spec.params.init_topologies)) {
      return field_error(error);
    }
    if (!assign("iterations", spec.params.iterations)) {
      return field_error(error);
    }
    if (!assign("pool", spec.params.pool)) return field_error(error);
    if (!assign("sizing_init", spec.params.sizing_init)) {
      return field_error(error);
    }
    if (!assign("sizing_iterations", spec.params.sizing_iterations)) {
      return field_error(error);
    }
    if (!assign("seed", spec.params.seed)) return field_error(error);
  }
  return spec;
}

obs::Json job_info_to_json(const sched::JobInfo& info) {
  obs::Json root = obs::Json::object();
  root["id"] = obs::Json(static_cast<unsigned long long>(info.id));
  root["state"] = obs::Json(std::string(sched::job_state_name(info.state)));
  root["terminal"] = obs::Json(sched::job_state_terminal(info.state));
  root["units_total"] = obs::Json(static_cast<unsigned long long>(
      info.units_total));
  root["units_done"] = obs::Json(static_cast<unsigned long long>(
      info.units_done));
  root["simulations"] = obs::Json(static_cast<unsigned long long>(
      info.simulations));
  root["preemptions"] = obs::Json(static_cast<unsigned long long>(
      info.preemptions));
  root["message"] = obs::Json(info.message);
  root["spec"] = job_spec_to_json(info.spec);
  return root;
}

Expected<svc::EvalRequest> eval_request_from_json(const obs::Json& root) {
  if (!root.is_object()) {
    return field_error("evaluation request must be a JSON object");
  }
  for (const auto& [key, value] : root.members()) {
    if (key != "spec" && key != "topology" && key != "sizing") {
      return field_error("unknown evaluation field '" + key + "'");
    }
  }
  if (!root.contains("spec") || !root.at("spec").is_string()) {
    return field_error("field 'spec' (string) is required");
  }
  svc::EvalRequest request;
  try {
    request.spec = circuit::spec_by_name(root.at("spec").as_string());
  } catch (const std::exception& e) {
    return field_error(e.what());
  }
  if (!root.contains("topology")) {
    return field_error("field 'topology' (integer) is required");
  }
  std::string error;
  if (!read_u64(root, "topology", request.topology_index, error)) {
    return field_error(error);
  }
  if (root.contains("sizing")) {
    const obs::Json& sizing = root.at("sizing");
    if (!sizing.is_object()) {
      return field_error("field 'sizing' must be a JSON object");
    }
    for (const auto& [key, value] : sizing.members()) {
      if (key != "init_points" && key != "iterations" &&
          key != "candidates" && key != "refit_hyper_every") {
        return field_error("unknown sizing field '" + key + "'");
      }
    }
    std::uint64_t n = 0;
    n = request.sizing.init_points;
    if (!read_u64(sizing, "init_points", n, error)) {
      return field_error(error);
    }
    request.sizing.init_points = static_cast<std::size_t>(n);
    n = request.sizing.iterations;
    if (!read_u64(sizing, "iterations", n, error)) return field_error(error);
    request.sizing.iterations = static_cast<std::size_t>(n);
    n = request.sizing.candidates;
    if (!read_u64(sizing, "candidates", n, error)) return field_error(error);
    request.sizing.candidates = static_cast<std::size_t>(n);
    n = static_cast<std::uint64_t>(request.sizing.refit_hyper_every);
    if (!read_u64(sizing, "refit_hyper_every", n, error)) {
      return field_error(error);
    }
    request.sizing.refit_hyper_every = static_cast<int>(n);
  }
  return request;
}

obs::Json evaluation_to_json(const svc::EvalRequest& request,
                             const EvaluationOutcome& outcome) {
  const sizing::SizedResult& sized = outcome.record.record.sized;
  obs::Json perf = obs::Json::object();
  perf["gain_db"] = obs::Json(sized.best.perf.gain_db);
  perf["gbw_hz"] = obs::Json(sized.best.perf.gbw_hz);
  perf["pm_deg"] = obs::Json(sized.best.perf.pm_deg);
  perf["power_w"] = obs::Json(sized.best.perf.power_w);
  perf["valid"] = obs::Json(sized.best.perf.valid);

  obs::Json root = obs::Json::object();
  root["spec"] = obs::Json(request.spec.name);
  root["topology"] = obs::Json(static_cast<unsigned long long>(
      request.topology_index));
  root["served_from"] =
      obs::Json(std::string(svc::served_from_name(outcome.served_from)));
  root["feasible"] = obs::Json(sized.best.feasible);
  root["fom"] = obs::Json(sized.best.fom);
  root["simulations"] = obs::Json(static_cast<unsigned long long>(
      sized.simulations));
  root["performance"] = std::move(perf);
  root["record_bytes"] = obs::Json(static_cast<unsigned long long>(
      outcome.record_payload.size()));
  root["record_fnv1a"] = obs::Json(fnv1a_hex(outcome.record_payload));
  return root;
}

}  // namespace intooa::api
