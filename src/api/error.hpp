#pragma once
// api::Error — the unified client-facing error taxonomy of intooa::api.
// Every failure a caller can see — dial refused, handshake rejected, queue
// full, unknown job id, malformed JSON — is one Error: a code from a small
// closed enum, a human message, and (for backpressure shapes) the server's
// retry hint. The taxonomy replaces the per-subsystem string errors that
// svc::Client and sched::JobClient used to throw at callers: the transport
// layers now throw typed exceptions (svc::TransportError, svc::RemoteError)
// and api::Session maps them here, so nothing above this layer ever parses
// an error message to decide behavior.
//
// Three deterministic mappings hang off the code, used verbatim by the CLI
// and the HTTP gateway (docs/GATEWAY.md tabulates all three):
//
//   error_retryable(code)    — whether blind retry-with-backoff can succeed
//   error_http_status(code)  — the gateway's HTTP response status
//   error_exit_code(code)    — intooa-svc-client's process exit status
//                              (0 ok, 2 usage/invalid, 3 retryable,
//                               4 permanent)
//
// Expected<T> is the return shape of every api::Session operation: either
// a T or an Error, never an exception across the facade boundary.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace intooa::api {

/// The closed set of client-visible failure modes.
enum class ErrorCode : std::uint8_t {
  InvalidArgument = 1,  ///< the request itself is wrong (bad spec, bad JSON)
  NotFound = 2,         ///< the named resource (job id, route) does not exist
  Busy = 3,             ///< evaluation admission rejected; retry after hint
  QueueFull = 4,        ///< scheduler job queue full; retry after hint
  Draining = 5,         ///< the server is shutting down; retry elsewhere/later
  Unavailable = 6,      ///< endpoint unreachable or connection lost
  Timeout = 7,          ///< the peer went silent past the deadline
  Protocol = 8,         ///< wire corruption or version mismatch
  Unsupported = 9,      ///< the peer predates the requested capability
  Internal = 10,        ///< the server failed on its side
};

/// Stable snake_case name of a code ("queue_full", ...), the `code` field
/// of every gateway error body and of `--json` error output.
std::string_view error_code_name(ErrorCode code);

/// Inverse of error_code_name; nullopt for an unknown name.
std::optional<ErrorCode> error_code_from_name(std::string_view name);

/// True when a blind retry-with-backoff of the same request can succeed:
/// Busy, QueueFull, Draining, Unavailable, Timeout.
bool error_retryable(ErrorCode code);

/// The HTTP status the gateway answers for a code:
///   InvalidArgument 400, NotFound 404, Busy/QueueFull 429, Draining 503,
///   Unavailable 502, Timeout 504, Protocol 502, Unsupported 501,
///   Internal 500.
int error_http_status(ErrorCode code);

/// intooa-svc-client's exit status for a failure: 2 for InvalidArgument
/// (caller error, same class as a usage mistake), 3 for any retryable
/// code, 4 for the permanent rest. Success is 0 by construction.
int error_exit_code(ErrorCode code);

/// One client-visible failure.
struct Error {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  /// Backpressure hint in milliseconds (Busy/QueueFull/Draining replies);
  /// 0 means the server offered none.
  std::uint32_t retry_after_ms = 0;

  bool retryable() const { return error_retryable(code); }
  int http_status() const { return error_http_status(code); }
  int exit_code() const { return error_exit_code(code); }

  friend bool operator==(const Error&, const Error&) = default;
};

/// Maps an exception thrown by the transport/client layers into the
/// taxonomy: svc::TransportError by kind (Connect/ConnectionLost ->
/// Unavailable, Timeout -> Timeout, Protocol -> Protocol, Unsupported ->
/// Unsupported), svc::RemoteError by wire code (Draining -> Draining,
/// Internal -> Internal, frame-level codes -> Protocol),
/// std::invalid_argument -> InvalidArgument, anything else -> Internal.
Error error_from_exception(const std::exception& e);

/// Either a T or an Error — the return type of every facade operation.
/// Accessing the wrong side throws std::logic_error (a caller bug, not a
/// service failure), so tests fail loudly instead of reading garbage.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}
  Expected(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require(ok(), "Expected::value() on an error");
    return *value_;
  }
  T& value() & {
    require(ok(), "Expected::value() on an error");
    return *value_;
  }
  T&& take() && {
    require(ok(), "Expected::take() on an error");
    return std::move(*value_);
  }

  const Error& error() const {
    require(!ok(), "Expected::error() on a value");
    return *error_;
  }

 private:
  static void require(bool condition, const char* what) {
    if (!condition) throw std::logic_error(what);
  }

  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace intooa::api
