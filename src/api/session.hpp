#pragma once
// api::Session — the single client facade over everything an intooa
// deployment serves. One Session owns the connect/handshake/reconnect
// lifecycle for up to three backends and exposes them as typed sub-APIs:
//
//   evaluations()  one topology evaluation per call, routed over a
//                  svc::ClientPool across the configured evaluator
//                  endpoints (a single endpoint is simply a pool of one) —
//                  subsumes the svc::Client / svc::ClientPool entry points
//   jobs()         campaign job control against intooa-schedd — subsumes
//                  sched::JobClient
//   stats()        live telemetry snapshots from an evaluator
//
// Every operation returns api::Expected<T>: a value or one api::Error from
// the unified taxonomy (api/error.hpp). Nothing throws across the facade
// on a service failure; exceptions surface only for caller bugs (reading
// the wrong side of an Expected).
//
// Connection policy: everything dials lazily on first use. A failed or
// lost connection surfaces as a (retryable) Error and the session redials
// transparently on the next call — callers own the backoff, the facade
// owns the plumbing. Evaluation requests are sharded by EvalKey digest so
// one key always lands on one server's warm store, exactly like the
// campaign runner's pool; evaluation failure is soft inside the pool
// (down endpoints are probed in the background) and becomes Unavailable
// here once the pool gives up.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/error.hpp"
#include "sched/client.hpp"
#include "sched/job.hpp"
#include "store/record_io.hpp"
#include "svc/client.hpp"
#include "svc/client_pool.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace intooa::api {

/// Where a Session dials; everything is optional and lazily connected —
/// using a sub-API whose backend was not configured yields
/// Error{InvalidArgument}.
struct SessionConfig {
  /// Evaluation service endpoints (intooa-served), sharded by EvalKey
  /// digest when more than one.
  std::vector<svc::Address> evaluators;
  /// Campaign scheduler endpoint (intooa-schedd).
  std::optional<svc::Address> scheduler;
  /// Pool tuning for evaluations() (inflight depth, reconnect policy).
  svc::ClientPoolConfig pool;
  /// Read timeout for stats round-trips; < 0 waits forever.
  int stats_timeout_ms = -1;
};

/// One served evaluation: which tier answered, the raw record bytes (for
/// byte-identity checks against an in-process recompute), and the decoded
/// record.
struct EvaluationOutcome {
  svc::ServedFrom served_from = svc::ServedFrom::Computed;
  std::string record_payload;  ///< store::encode_record bytes, verbatim
  store::StoredRecord record;
};

class Session;

/// Evaluation sub-API. Thread-safe: the pool is built exactly once under
/// a lock (concurrent first calls do not race the install), and once built
/// it serializes per endpoint so many callers may evaluate concurrently.
class Evaluations {
 public:
  /// Evaluates one (spec, sizing, topology) request, blocking until a
  /// result or pool give-up. The request id is assigned by the pool; the
  /// shard is the request's EvalKey digest. Errors: InvalidArgument (no
  /// evaluator configured, bad topology index), Unavailable (every attempt
  /// failed / endpoint down), Protocol (undecodable record bytes).
  Expected<EvaluationOutcome> evaluate(const svc::EvalRequest& request);

  /// The EvalKey digest `request` shards by (exposed for tests and for
  /// callers that pre-partition work).
  static Expected<std::uint64_t> shard_digest(const svc::EvalRequest& request);

 private:
  friend class Session;
  explicit Evaluations(Session& session) : session_(session) {}
  Session& session_;
};

/// Job-control sub-API against intooa-schedd. Not thread-safe (one
/// request/reply connection); give each thread its own Session.
class Jobs {
 public:
  /// Submits a job and returns its id. Errors: QueueFull (with the retry
  /// hint), InvalidArgument (rejected spec), Draining, Unavailable.
  Expected<std::uint64_t> submit(const sched::JobSpec& spec);

  /// One job's snapshot. Error NotFound for an unknown id.
  Expected<sched::JobInfo> status(std::uint64_t job_id);

  /// Requests cancellation; returns the post-request snapshot. Error
  /// NotFound for an unknown id.
  Expected<sched::JobInfo> cancel(std::uint64_t job_id);

  /// All jobs, optionally one tenant's, in submission order.
  Expected<std::vector<sched::JobInfo>> list(const std::string& tenant = "");

  /// Liveness probe; false on nonce mismatch.
  Expected<bool> ping();

 private:
  friend class Session;
  explicit Jobs(Session& session) : session_(session) {}

  /// Runs `op` against a connected JobClient, mapping exceptions into the
  /// taxonomy and dropping the connection on transport failure so the
  /// next call redials.
  template <typename T, typename Op>
  Expected<T> with_client(Op&& op);

  Session& session_;
};

/// Telemetry sub-API (one evaluator's live stats). Not thread-safe.
class Stats {
 public:
  /// The server's stats document (JSON text; parse with obs::Json).
  /// Errors: Unsupported (a protocol-1.0 server), Timeout, Unavailable.
  Expected<std::string> fetch_json(bool include_flight = false);

 private:
  friend class Session;
  explicit Stats(Session& session) : session_(session) {}
  Session& session_;
};

class Session {
 public:
  explicit Session(SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Evaluations& evaluations() { return evaluations_; }
  Jobs& jobs() { return jobs_; }
  Stats& stats() { return stats_; }

  const SessionConfig& config() const { return config_; }

  /// Closes every connection; the session stays usable (next call
  /// redials). Idempotent.
  void close();

 private:
  friend class Evaluations;
  friend class Jobs;
  friend class Stats;

  /// The lazily built evaluation pool; Error when no evaluator configured.
  /// Safe to call from concurrent evaluation threads: the build-and-install
  /// is serialized on pool_mutex_.
  Expected<svc::ClientPool*> eval_pool();
  /// The lazily connected stats client; Error when connect fails.
  Expected<svc::Client*> stats_client();
  /// The lazily connected job client; Error when connect fails or no
  /// scheduler configured.
  Expected<sched::JobClient*> job_client();
  void drop_job_client();
  void drop_stats_client();

  SessionConfig config_;
  /// Guards pool_'s install/teardown: evaluations() is documented
  /// thread-safe, so concurrent first calls must not both construct (and
  /// the loser destroy) the pool the winner is evaluating against.
  std::mutex pool_mutex_;
  std::unique_ptr<svc::ClientPool> pool_;
  std::unique_ptr<svc::Client> stats_client_;
  std::unique_ptr<sched::JobClient> job_client_;
  Evaluations evaluations_;
  Jobs jobs_;
  Stats stats_;
};

}  // namespace intooa::api
