#include "api/error.hpp"

#include "svc/socket.hpp"

namespace intooa::api {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::InvalidArgument: return "invalid_argument";
    case ErrorCode::NotFound: return "not_found";
    case ErrorCode::Busy: return "busy";
    case ErrorCode::QueueFull: return "queue_full";
    case ErrorCode::Draining: return "draining";
    case ErrorCode::Unavailable: return "unavailable";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::Protocol: return "protocol";
    case ErrorCode::Unsupported: return "unsupported";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

std::optional<ErrorCode> error_code_from_name(std::string_view name) {
  for (const ErrorCode code :
       {ErrorCode::InvalidArgument, ErrorCode::NotFound, ErrorCode::Busy,
        ErrorCode::QueueFull, ErrorCode::Draining, ErrorCode::Unavailable,
        ErrorCode::Timeout, ErrorCode::Protocol, ErrorCode::Unsupported,
        ErrorCode::Internal}) {
    if (error_code_name(code) == name) return code;
  }
  return std::nullopt;
}

bool error_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::Busy:
    case ErrorCode::QueueFull:
    case ErrorCode::Draining:
    case ErrorCode::Unavailable:
    case ErrorCode::Timeout:
      return true;
    case ErrorCode::InvalidArgument:
    case ErrorCode::NotFound:
    case ErrorCode::Protocol:
    case ErrorCode::Unsupported:
    case ErrorCode::Internal:
      return false;
  }
  return false;
}

int error_http_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::InvalidArgument: return 400;
    case ErrorCode::NotFound: return 404;
    case ErrorCode::Busy: return 429;
    case ErrorCode::QueueFull: return 429;
    case ErrorCode::Draining: return 503;
    case ErrorCode::Unavailable: return 502;
    case ErrorCode::Timeout: return 504;
    case ErrorCode::Protocol: return 502;
    case ErrorCode::Unsupported: return 501;
    case ErrorCode::Internal: return 500;
  }
  return 500;
}

int error_exit_code(ErrorCode code) {
  if (code == ErrorCode::InvalidArgument) return 2;
  return error_retryable(code) ? 3 : 4;
}

Error error_from_exception(const std::exception& e) {
  if (const auto* transport = dynamic_cast<const svc::TransportError*>(&e)) {
    ErrorCode code = ErrorCode::Internal;
    switch (transport->kind()) {
      case svc::TransportError::Kind::Connect:
      case svc::TransportError::Kind::ConnectionLost:
        code = ErrorCode::Unavailable;
        break;
      case svc::TransportError::Kind::Timeout:
        code = ErrorCode::Timeout;
        break;
      case svc::TransportError::Kind::Protocol:
        code = ErrorCode::Protocol;
        break;
      case svc::TransportError::Kind::Unsupported:
        code = ErrorCode::Unsupported;
        break;
    }
    return Error{code, e.what(), 0};
  }
  if (const auto* remote = dynamic_cast<const svc::RemoteError*>(&e)) {
    ErrorCode code = ErrorCode::Protocol;
    switch (remote->code()) {
      case svc::ErrorCode::Draining:
        code = ErrorCode::Draining;
        break;
      case svc::ErrorCode::Internal:
        code = ErrorCode::Internal;
        break;
      case svc::ErrorCode::MalformedRequest:
        code = ErrorCode::InvalidArgument;
        break;
      case svc::ErrorCode::BadFrame:
      case svc::ErrorCode::VersionMismatch:
      case svc::ErrorCode::OversizedFrame:
        code = ErrorCode::Protocol;
        break;
    }
    return Error{code, e.what(), 0};
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return Error{ErrorCode::InvalidArgument, e.what(), 0};
  }
  return Error{ErrorCode::Internal, e.what(), 0};
}

}  // namespace intooa::api
