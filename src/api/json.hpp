#pragma once
// JSON encodings of the api types, shared verbatim by the HTTP gateway's
// request/response bodies and by intooa-svc-client's --json output — one
// schema, two transports (docs/GATEWAY.md documents every shape).
// Encoding builds obs::Json values; decoding is strict about types but
// lenient about omissions (every JobSpec/SizingConfig field has the same
// default as the C++ struct) and returns Expected so a malformed body
// surfaces as Error{InvalidArgument} with a field-naming message.

#include <cstdint>
#include <string>
#include <string_view>

#include "api/error.hpp"
#include "api/session.hpp"
#include "obs/json.hpp"
#include "sched/job.hpp"
#include "svc/protocol.hpp"

namespace intooa::api {

/// {"error": {"code", "message", "retryable"[, "retry_after_ms"]}} — the
/// body of every gateway error response and of --json failure output.
obs::Json error_to_json(const Error& error);

/// Inverse of error_to_json (used by CLI/tests to round-trip gateway
/// errors). Unknown code names decode as Internal.
Error error_from_json(const obs::Json& root);

obs::Json job_spec_to_json(const sched::JobSpec& spec);

/// Decodes a job spec; missing fields keep their struct defaults, wrong
/// types or an unknown member yield InvalidArgument.
Expected<sched::JobSpec> job_spec_from_json(const obs::Json& root);

obs::Json job_info_to_json(const sched::JobInfo& info);

/// Decodes an evaluation request body: {"spec": "S-1", "topology": N,
/// "sizing": {"init_points", "iterations", "candidates",
/// "refit_hyper_every"}} with "sizing" (and each of its fields) optional.
/// The request id is left 0 — the pool assigns its own.
Expected<svc::EvalRequest> eval_request_from_json(const obs::Json& root);

/// One served evaluation: spec/topology echo, serving tier, the best
/// point's feasibility/FoM/performance, the simulation count, and a
/// digest of the raw record bytes ("record_fnv1a", FNV-1a 64 as 16 hex
/// digits) so HTTP callers can assert byte-identity against the binary
/// protocol without a binary-safe transport.
obs::Json evaluation_to_json(const svc::EvalRequest& request,
                             const EvaluationOutcome& outcome);

/// FNV-1a 64 over arbitrary bytes, rendered as 16 lowercase hex digits —
/// the record digest of evaluation_to_json, exposed for tests and for the
/// binary-path clients that want to compare against a gateway result.
std::string fnv1a_hex(std::string_view data);

}  // namespace intooa::api
