#pragma once
// One sized-circuit evaluation: the unit of cost in every experiment
// (Table II's "# Sim." counts exactly these). Bundles simulation, FoM and
// normalized constraint margins for one (topology, parameter vector) pair.

#include <array>
#include <span>

#include "circuit/behavioral.hpp"
#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "sim/metrics.hpp"

namespace intooa::sizing {

/// Result of simulating one sized design against a Spec.
struct EvalPoint {
  circuit::Performance perf;
  double fom = 0.0;  ///< Eq. 6, 0 when invalid
  std::array<double, circuit::Spec::kConstraintCount> margins{};
  bool feasible = false;

  /// Scalar BO objective: log10(FoM) clamped from below. Log-domain keeps
  /// the GP target well-scaled across the orders of magnitude FoM spans.
  double objective() const;

  /// Sum of positive margins (0 when feasible).
  double violation() const;
};

/// Simulation + scoring options shared by the sizing loop and every
/// experiment harness.
struct EvalContext {
  circuit::Spec spec;
  circuit::BehavioralConfig behavioral;
  sim::AcOptions ac;

  /// Constructs a context whose behavioral load capacitor is taken from
  /// the spec (the paper varies C_L per specification set).
  explicit EvalContext(const circuit::Spec& s,
                       circuit::BehavioralConfig b = {},
                       sim::AcOptions a = {});
};

/// Builds the behavioral netlist for (topology, values) and evaluates it.
/// Never throws on circuit pathologies: structural failures come back as
/// an infeasible EvalPoint with perf.valid == false.
EvalPoint evaluate_sized(const circuit::Topology& topology,
                         std::span<const double> values,
                         const EvalContext& ctx);

/// True when `point` is better than `incumbent` under the constrained
/// ranking: any feasible beats any infeasible; feasible points compare by
/// FoM; infeasible points compare by (lower) violation.
bool better_than(const EvalPoint& point, const EvalPoint& incumbent);

}  // namespace intooa::sizing
