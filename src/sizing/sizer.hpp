#pragma once
// Continuous sizing Bayesian optimization (the inner loop of Eq. 1): for a
// fixed topology, find parameter values maximizing FoM under the Spec's
// constraints. Follows the paper's protocol — 10 random initial points and
// 30 BO iterations with the wEI acquisition [1] — for a fixed budget of 40
// simulations per topology.
//
// Also provides `resize_subset`, the restricted sizing used by topology
// refinement (Sec. III-C): only the parameters of the modified subcircuit
// vary, all other component values stay at their trusted-design values.

#include <cstdint>
#include <vector>

#include "circuit/behavioral.hpp"
#include "circuit/spec.hpp"
#include "circuit/topology.hpp"
#include "sizing/evaluate.hpp"
#include "util/rng.hpp"

namespace intooa::sizing {

/// Sizing-loop configuration (defaults = paper protocol).
struct SizingConfig {
  std::size_t init_points = 10;
  std::size_t iterations = 30;
  std::size_t candidates = 256;   ///< acquisition pool per iteration
  int refit_hyper_every = 4;      ///< full MLE refit period (1 = every iter)
};

/// Outcome of sizing one topology.
struct SizedResult {
  circuit::Topology topology;
  std::vector<double> best_values;  ///< physical units, schema order
  EvalPoint best;                   ///< evaluation of best_values
  std::size_t simulations = 0;      ///< simulator calls consumed

  /// Per-simulation history, in evaluation order (length == simulations);
  /// used to build the Fig. 5 best-FoM-vs-#sim curves.
  std::vector<EvalPoint> history;
};

/// GP-based sizing optimizer for one Spec.
class Sizer {
 public:
  Sizer(EvalContext context, SizingConfig config = {});

  /// Runs the 10+30 wEI BO on all parameters of `topology`.
  SizedResult size(const circuit::Topology& topology, util::Rng& rng) const;

  /// Restricted sizing: parameters at indices `free_indices` (within the
  /// topology's schema) are optimized; the rest stay at `base_values`.
  /// `base_values` must match the schema. Budget = init_points+iterations
  /// unless overridden by `budget` (> 0).
  SizedResult resize_subset(const circuit::Topology& topology,
                            std::span<const double> base_values,
                            std::span<const std::size_t> free_indices,
                            util::Rng& rng, std::size_t budget = 0) const;

  const EvalContext& context() const { return context_; }
  const SizingConfig& config() const { return config_; }

 private:
  SizedResult optimize(const circuit::Topology& topology,
                       const circuit::ParamSchema& schema,
                       std::span<const double> base_unit,
                       std::span<const std::size_t> free_indices,
                       std::size_t init_points, std::size_t iterations,
                       util::Rng& rng) const;

  EvalContext context_;
  SizingConfig config_;
};

}  // namespace intooa::sizing
