#pragma once
// Process-corner / variation analysis for behavioral designs. Real analog
// flows never sign off on a single typical point: the behavioral model
// constants (per-stage intrinsic gain, stage fT, bias efficiency) shift
// with process and temperature, and a synthesized topology is only
// trustworthy if it meets the spec across those shifts. This module
// defines multiplicative corners over BehavioralConfig and evaluates a
// sized design at each, reporting per-corner performance and worst-case
// margins — the variation-awareness that e.g. McConaghy et al.'s
// synthesis line [9] argues is essential for trustworthy topologies.

#include <string>
#include <vector>

#include "sizing/evaluate.hpp"

namespace intooa::sizing {

/// One process corner: multiplicative perturbations of the behavioral
/// model constants (1.0 = typical).
struct Corner {
  std::string name;
  double intrinsic_gain_scale = 1.0;  ///< per-stage A0
  double ft_scale = 1.0;              ///< stage transition frequency
  double gm_over_id_scale = 1.0;      ///< bias efficiency (power shifts)
  double c0_scale = 1.0;              ///< fixed parasitic capacitance

  /// Applies the corner to a typical configuration.
  circuit::BehavioralConfig apply(
      const circuit::BehavioralConfig& typical) const;
};

/// A standard five-corner set: typical, fast (strong devices, light
/// parasitics), slow (weak devices, heavy parasitics), low-gain and
/// high-parasitic corners. Spreads are +-20% (gain/fT/C0) and +-10%
/// (gm/Id), representative of inter-die process spread.
const std::vector<Corner>& standard_corners();

/// Performance of one design at one corner.
struct CornerResult {
  Corner corner;
  EvalPoint point;
};

/// Corner-sweep summary.
struct CornerSweep {
  std::vector<CornerResult> results;
  std::size_t worst_index = 0;  ///< corner with the largest spec violation
  bool all_feasible = false;    ///< design meets the spec at every corner
  double worst_violation = 0.0;
  double min_fom = 0.0;  ///< smallest FoM across corners (0 if any invalid)
};

/// Evaluates (topology, values) against the context's spec at every corner
/// (the designer's component values are held fixed; corners shift only the
/// model constants). Costs corners.size() simulations.
CornerSweep evaluate_corners(const circuit::Topology& topology,
                             std::span<const double> values,
                             const EvalContext& typical,
                             const std::vector<Corner>& corners =
                                 standard_corners());

}  // namespace intooa::sizing
