#include "sizing/corners.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace intooa::sizing {

circuit::BehavioralConfig Corner::apply(
    const circuit::BehavioralConfig& typical) const {
  circuit::BehavioralConfig out = typical;
  out.stage_intrinsic_gain *= intrinsic_gain_scale;
  out.stage_ft_hz *= ft_scale;
  out.gm_over_id *= gm_over_id_scale;
  out.stage_c0 *= c0_scale;
  return out;
}

const std::vector<Corner>& standard_corners() {
  static const std::vector<Corner> corners = {
      //        name      A0    fT    gm/Id  C0
      Corner{"typ", 1.0, 1.0, 1.0, 1.0},
      Corner{"fast", 1.2, 1.2, 1.1, 0.8},
      Corner{"slow", 0.8, 0.8, 0.9, 1.2},
      Corner{"lowgain", 0.8, 1.0, 1.0, 1.0},
      Corner{"hicap", 1.0, 0.8, 1.0, 1.2},
  };
  return corners;
}

CornerSweep evaluate_corners(const circuit::Topology& topology,
                             std::span<const double> values,
                             const EvalContext& typical,
                             const std::vector<Corner>& corners) {
  CornerSweep sweep;
  sweep.all_feasible = !corners.empty();
  sweep.min_fom = std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < corners.size(); ++i) {
    EvalContext ctx = typical;
    ctx.behavioral = corners[i].apply(typical.behavioral);
    // The corner never changes the load the spec demands.
    ctx.behavioral.load_cap = typical.spec.load_cap;

    CornerResult result;
    result.corner = corners[i];
    result.point = evaluate_sized(topology, values, ctx);
    sweep.all_feasible = sweep.all_feasible && result.point.feasible;
    sweep.min_fom = std::min(sweep.min_fom, result.point.fom);
    const double violation = result.point.violation();
    if (violation > sweep.worst_violation || i == 0) {
      sweep.worst_violation = violation;
      sweep.worst_index = i;
    }
    sweep.results.push_back(std::move(result));
  }
  if (!std::isfinite(sweep.min_fom)) sweep.min_fom = 0.0;
  return sweep;
}

}  // namespace intooa::sizing
