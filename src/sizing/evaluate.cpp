#include "sizing/evaluate.hpp"

#include <cmath>

#include "obs/span.hpp"

namespace intooa::sizing {

double EvalPoint::objective() const {
  return std::log10(std::max(fom, 1e-6));
}

double EvalPoint::violation() const {
  double acc = 0.0;
  for (double m : margins) acc += std::max(0.0, m);
  return acc;
}

EvalContext::EvalContext(const circuit::Spec& s, circuit::BehavioralConfig b,
                         sim::AcOptions a)
    : spec(s), behavioral(b), ac(a) {
  behavioral.load_cap = spec.load_cap;
}

EvalPoint evaluate_sized(const circuit::Topology& topology,
                         std::span<const double> values,
                         const EvalContext& ctx) {
  INTOOA_SPAN("sizing.evaluate");
  EvalPoint point;
  circuit::Netlist net;
  try {
    net = circuit::build_behavioral(topology, values, ctx.behavioral);
  } catch (const std::invalid_argument&) {
    // Malformed parameters: report as maximally infeasible rather than
    // aborting a whole optimization campaign.
    point.perf.failure = "netlist construction failed";
    point.margins.fill(10.0);
    return point;
  }
  point.perf = sim::evaluate_opamp(net, ctx.behavioral.vdd, "vout", ctx.ac);
  point.fom = circuit::fom(point.perf, ctx.spec.load_cap);
  point.margins = ctx.spec.margins(point.perf);
  point.feasible = ctx.spec.satisfied(point.perf);
  return point;
}

bool better_than(const EvalPoint& point, const EvalPoint& incumbent) {
  if (point.feasible != incumbent.feasible) return point.feasible;
  if (point.feasible) return point.fom > incumbent.fom;
  return point.violation() < incumbent.violation();
}

}  // namespace intooa::sizing
