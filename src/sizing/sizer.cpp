#include "sizing/sizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "gp/acquisition.hpp"
#include "gp/joint_gp.hpp"
#include "obs/span.hpp"

namespace intooa::sizing {

namespace {

// Margins are clamped before entering the GP so the +10 "invalid design"
// sentinel does not dominate the standardization.
constexpr double kMarginClamp = 3.0;

std::vector<double> gp_targets(const EvalPoint& point) {
  std::vector<double> t;
  t.reserve(1 + point.margins.size());
  t.push_back(point.objective());
  for (double m : point.margins) {
    t.push_back(std::clamp(m, -kMarginClamp, kMarginClamp));
  }
  return t;
}

}  // namespace

Sizer::Sizer(EvalContext context, SizingConfig config)
    : context_(std::move(context)), config_(config) {
  if (config_.init_points < 2) {
    throw std::invalid_argument("Sizer: need at least 2 initial points");
  }
  if (config_.candidates == 0) {
    throw std::invalid_argument("Sizer: need a non-empty candidate pool");
  }
  if (config_.refit_hyper_every < 1) {
    throw std::invalid_argument("Sizer: refit_hyper_every must be >= 1");
  }
}

SizedResult Sizer::size(const circuit::Topology& topology,
                        util::Rng& rng) const {
  const circuit::ParamSchema schema =
      circuit::make_schema(topology, context_.behavioral);
  std::vector<double> base_unit(schema.size(), 0.5);
  std::vector<std::size_t> all_indices(schema.size());
  for (std::size_t i = 0; i < all_indices.size(); ++i) all_indices[i] = i;
  return optimize(topology, schema, base_unit, all_indices,
                  config_.init_points, config_.iterations, rng);
}

SizedResult Sizer::resize_subset(const circuit::Topology& topology,
                                 std::span<const double> base_values,
                                 std::span<const std::size_t> free_indices,
                                 util::Rng& rng, std::size_t budget) const {
  const circuit::ParamSchema schema =
      circuit::make_schema(topology, context_.behavioral);
  if (base_values.size() != schema.size()) {
    throw std::invalid_argument("resize_subset: base_values size mismatch");
  }
  for (std::size_t idx : free_indices) {
    if (idx >= schema.size()) {
      throw std::invalid_argument("resize_subset: free index out of range");
    }
  }
  const std::vector<double> base_unit = schema.to_unit(base_values);
  std::size_t init = config_.init_points;
  std::size_t iters = config_.iterations;
  if (budget > 0) {
    init = std::max<std::size_t>(2, budget / 4);
    iters = budget - init;
  }
  return optimize(topology, schema, base_unit, free_indices, init, iters, rng);
}

SizedResult Sizer::optimize(const circuit::Topology& topology,
                            const circuit::ParamSchema& schema,
                            std::span<const double> base_unit,
                            std::span<const std::size_t> free_indices,
                            std::size_t init_points, std::size_t iterations,
                            util::Rng& rng) const {
  INTOOA_SPAN("sizing.size");
  const std::size_t dim = free_indices.size();
  if (dim == 0) {
    throw std::invalid_argument("Sizer: no free parameters to optimize");
  }

  SizedResult result;
  result.topology = topology;

  // Evaluates a point in the free-parameter unit cube.
  auto evaluate_unit = [&](std::span<const double> u) {
    std::vector<double> full(base_unit.begin(), base_unit.end());
    for (std::size_t k = 0; k < dim; ++k) full[free_indices[k]] = u[k];
    const std::vector<double> values = schema.from_unit(full);
    EvalPoint point = evaluate_sized(topology, values, context_);
    result.history.push_back(point);
    ++result.simulations;
    return std::pair(point, values);
  };

  std::vector<std::vector<double>> xs;       // free-unit coordinates
  std::vector<std::vector<double>> targets;  // GP targets per point
  std::vector<EvalPoint> points;

  std::size_t best_idx = 0;
  std::vector<double> best_values;

  auto record = [&](std::vector<double> u) {
    const auto [point, values] = evaluate_unit(u);
    xs.push_back(std::move(u));
    targets.push_back(gp_targets(point));
    points.push_back(point);
    if (points.size() == 1 || better_than(point, points[best_idx])) {
      best_idx = points.size() - 1;
      best_values = values;
    }
  };

  // Initial design: the base point first (for refinement this is the
  // trusted sizing), then uniform random samples.
  {
    std::vector<double> u0(dim);
    for (std::size_t k = 0; k < dim; ++k) u0[k] = base_unit[free_indices[k]];
    record(std::move(u0));
  }
  for (std::size_t i = 1; i < init_points; ++i) {
    std::vector<double> u(dim);
    for (auto& v : u) v = rng.uniform();
    record(std::move(u));
  }

  gp::JointGp model;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const bool refit =
        iter % static_cast<std::size_t>(config_.refit_hyper_every) == 0;
    // Soften the objective of structurally invalid simulations (FoM = 0,
    // raw objective -6) to just below the worst valid one, so the GP's
    // resolution is spent on the real landscape.
    std::vector<std::vector<double>> fit_targets = targets;
    double worst_valid = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].perf.valid) {
        worst_valid = std::min(worst_valid, targets[i][0]);
      }
    }
    if (std::isfinite(worst_valid)) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (!points[i].perf.valid) fit_targets[i][0] = worst_valid - 1.0;
      }
    }
    model.fit(xs, fit_targets, refit);

    // Candidate pool: half global uniform, half local Gaussian around the
    // incumbent best.
    const std::vector<double>& anchor = xs[best_idx];
    std::vector<double> best_u;
    double best_score = -1.0;
    const bool have_feasible = points[best_idx].feasible;
    const double best_objective = points[best_idx].objective();

    for (std::size_t c = 0; c < config_.candidates; ++c) {
      std::vector<double> u(dim);
      if (c % 2 == 0) {
        for (auto& v : u) v = rng.uniform();
      } else {
        for (std::size_t k = 0; k < dim; ++k) {
          u[k] = std::clamp(anchor[k] + rng.normal(0.0, 0.08), 0.0, 1.0);
        }
      }
      const gp::JointPrediction pred = model.predict(u);
      gp::WeiInputs in;
      in.objective_mean = pred.mean[0];
      in.objective_variance = pred.variance[0];
      in.best_feasible = best_objective;
      in.have_feasible = have_feasible;
      std::array<double, circuit::Spec::kConstraintCount> cm{}, cv{};
      for (std::size_t k = 0; k < cm.size(); ++k) {
        cm[k] = pred.mean[k + 1];
        cv[k] = pred.variance[k + 1];
      }
      in.constraint_means = cm;
      in.constraint_variances = cv;
      const double score = gp::weighted_ei(in);
      if (score > best_score) {
        best_score = score;
        best_u = std::move(u);
      }
    }
    record(std::move(best_u));
  }

  result.best = points[best_idx];
  result.best_values = std::move(best_values);
  return result;
}

}  // namespace intooa::sizing
