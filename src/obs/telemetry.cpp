#include "obs/telemetry.hpp"

#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace intooa::obs {

namespace {

// The most recently constructed live session. Guarded by a mutex: the
// drain path (exit_if_draining on the main thread) and the destructor can
// race only in pathological teardown orders, but the lock makes the
// registration protocol unconditionally safe.
std::mutex g_active_mutex;
BenchTelemetry* g_active = nullptr;

}  // namespace

TelemetryOptions TelemetryOptions::from_cli(const util::Cli& cli,
                                            util::LogLevel default_level) {
  TelemetryOptions options;
  options.trace_path = cli.get("trace", "");
  options.metrics_path = cli.get("metrics", "");

  const std::string level_text = cli.get("log-level", "");
  if (level_text.empty()) {
    util::set_log_level(default_level);
  } else if (const auto level = util::parse_log_level(level_text)) {
    util::set_log_level(*level);
  } else {
    throw std::invalid_argument(
        "--log-level expects debug|info|warn|error|off, got '" + level_text +
        "'");
  }
  return options;
}

BenchTelemetry::BenchTelemetry(TelemetryOptions options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {
  if (!options_.trace_path.empty()) start_trace();
  std::lock_guard<std::mutex> lock(g_active_mutex);
  g_active = this;
}

BenchTelemetry::~BenchTelemetry() {
  {
    std::lock_guard<std::mutex> lock(g_active_mutex);
    if (g_active == this) g_active = nullptr;
  }
  finalize();
}

double BenchTelemetry::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void BenchTelemetry::finalize() {
  if (finalized_) return;
  finalized_ = true;

  const double elapsed = elapsed_seconds();
  if (!options_.trace_path.empty()) write_trace(options_.trace_path);

  const MetricsSnapshot snapshot = registry().snapshot();
  if (!options_.metrics_path.empty()) {
    write_metrics_report(options_.metrics_path, snapshot, elapsed);
  }
  // The human table rides the Info level: quiet runs (tests, --log-level
  // warn) skip it. stderr keeps stdout (bench tables piped to files)
  // byte-identical with telemetry off.
  if (util::log_level() <= util::LogLevel::Info &&
      (!snapshot.counters.empty() || !snapshot.histograms.empty())) {
    std::fputs((render_report(snapshot, elapsed) + "\n").c_str(), stderr);
  }
}

void finalize_active_telemetry() {
  BenchTelemetry* active = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_active_mutex);
    active = g_active;
    g_active = nullptr;  // at most one flush through this path
  }
  if (active != nullptr) active->finalize();
}

}  // namespace intooa::obs
