#pragma once
// RAII scoped spans: INTOOA_SPAN("gp.fit") times the enclosing scope and
// feeds (a) the log2 duration histogram of the same name in the metrics
// registry and (b) the Chrome trace buffer when tracing is on. Nesting is
// free — inner spans simply overlap outer ones on the same thread row,
// which Perfetto renders as a flame-style stack.
//
// Cost model: when obs::set_enabled(false), the constructor is one relaxed
// atomic load and a branch; nothing else runs. When enabled, entry/exit add
// two steady_clock reads plus one wait-free histogram update, and (only if
// tracing) one short mutex-guarded buffer append.

#include <cstdint>

#include "obs/metrics.hpp"

namespace intooa::obs {

class ScopedSpan {
 public:
  /// `name` must be a string literal (or otherwise outlive the process's
  /// trace session); it doubles as the histogram name.
  explicit ScopedSpan(const char* name) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    name_ = name;
    start_ns_ = detail::monotonic_ns();
  }
  ~ScopedSpan() {
    if (name_ != nullptr) finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void finish() noexcept;

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace intooa::obs

#define INTOOA_OBS_CONCAT_IMPL(a, b) a##b
#define INTOOA_OBS_CONCAT(a, b) INTOOA_OBS_CONCAT_IMPL(a, b)

/// Times the current scope under `name` (see obs/span.hpp).
#define INTOOA_SPAN(name) \
  ::intooa::obs::ScopedSpan INTOOA_OBS_CONCAT(intooa_span_, __LINE__)(name)
