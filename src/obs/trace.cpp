#include "obs/trace.hpp"

#include <atomic>
#include <charconv>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace intooa::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

struct TraceBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::size_t capacity = kDefaultEventCapacity;
  std::size_t dropped = 0;
};

TraceBuffer& buffer() {
  // Intentionally leaked for the same reason as obs::registry(): a pool
  // worker may still be finishing a span (and, in a traced run, recording
  // an event) after main has entered static destruction.
  static TraceBuffer* instance = new TraceBuffer();
  return *instance;
}

/// Microseconds with sub-microsecond precision (Chrome's "ts"/"dur" unit).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  const double us = static_cast<double>(ns) / 1000.0;
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), us,
                                       std::chars_format::fixed, 3);
  if (ec == std::errc()) out.append(buf, ptr);
  else out.push_back('0');
}

void append_escaped_name(std::string& out, const char* name) {
  // Span names are code literals (dotted identifiers); escape defensively
  // anyway so a stray quote cannot corrupt the JSON.
  for (const char* p = name; *p; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
}

/// Ids are emitted as quoted hex strings: Chrome's "id" field accepts
/// strings, and doubles cannot hold a full u64.
void append_hex_id(std::string& out, std::uint64_t id) {
  char buf[19] = "0x";
  const auto [ptr, ec] = std::to_chars(buf + 2, buf + sizeof(buf), id, 16);
  out.append(buf, ec == std::errc() ? static_cast<std::size_t>(ptr - buf) : 3);
}

/// One flow event ("ph":"s" starts an arrow, "ph":"f" with "bp":"e" ends it
/// at the enclosing slice). `ts` must fall inside the slice that anchors it.
void append_flow(std::string& line, char phase, std::uint64_t id, int pid,
                 int tid, std::uint64_t ts_ns) {
  line += ",\n{\"name\":\"svc.request\",\"cat\":\"intooa\",\"ph\":\"";
  line.push_back(phase);
  line += "\",\"id\":\"";
  append_hex_id(line, id);
  line += "\"";
  if (phase == 'f') line += ",\"bp\":\"e\"";
  line += ",\"pid\":";
  line += std::to_string(pid);
  line += ",\"tid\":";
  line += std::to_string(tid);
  line += ",\"ts\":";
  append_us(line, ts_ns);
  line += "}";
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void start_trace(std::size_t capacity) {
  TraceBuffer& buf = buffer();
  {
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.clear();
    buf.dropped = 0;
    buf.capacity = capacity > 0 ? capacity : kDefaultEventCapacity;
    buf.events.reserve(std::min<std::size_t>(buf.capacity, 4096));
  }
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void stop_trace() { g_trace_enabled.store(false, std::memory_order_relaxed); }

void trace_record(const char* name, std::uint64_t start_ns,
                  std::uint64_t duration_ns) {
  TraceEvent event;
  event.name = name;
  event.tid = util::thread_ordinal();
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  trace_record_event(event);
}

void trace_record_event(const TraceEvent& event) {
  if (!trace_enabled()) return;
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= buf.capacity) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(event);
}

std::size_t trace_event_count() {
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  return buf.events.size();
}

std::size_t trace_dropped_count() {
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  return buf.dropped;
}

bool write_trace(const std::string& path) {
  stop_trace();
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);

  std::ofstream out(path);
  if (!out) {
    util::log_warn("cannot write trace file", {{"path", path}});
    return false;
  }

  // Streamed by hand instead of building one obs::Json tree: a full trace
  // can hold a million events and the flat writer keeps peak memory at one
  // line, not a second copy of the buffer.
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << buf.dropped << "},\n\"traceEvents\":[\n";
  int max_tid = 0;
  bool has_remote = false;
  for (const TraceEvent& event : buf.events) {
    if (event.pid == kLocalPid && event.tid > max_tid) max_tid = event.tid;
    if (event.pid != kLocalPid) has_remote = true;
  }
  bool first = true;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kLocalPid
      << ",\"tid\":0,\"args\":{\"name\":\"intooa\"}}";
  first = false;
  if (has_remote) {
    out << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kRemotePid
        << ",\"tid\":0,\"args\":{\"name\":\"intooa-served (remote)\"}}";
  }
  for (int tid = 0; tid <= max_tid; ++tid) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kLocalPid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
        << (tid == 0 ? "main" : "worker") << "\"}}";
  }
  for (const TraceEvent& event : buf.events) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    line += "{\"name\":\"";
    append_escaped_name(line, event.name);
    line += "\",\"cat\":\"intooa\",\"ph\":\"X\",\"pid\":";
    line += std::to_string(event.pid);
    line += ",\"tid\":";
    line += std::to_string(event.tid);
    line += ",\"ts\":";
    append_us(line, event.start_ns);
    line += ",\"dur\":";
    append_us(line, event.duration_ns);
    if (event.trace_id != 0 || event.span_id != 0) {
      line += ",\"args\":{\"trace_id\":\"";
      append_hex_id(line, event.trace_id);
      line += "\",\"span_id\":\"";
      append_hex_id(line, event.span_id);
      line += "\"}";
    }
    line += "}";
    // Flow arrows bind to the slice just emitted: the start anchors at the
    // slice end (request leaves here), the finish at the slice start.
    if (event.flow_out != 0) {
      append_flow(line, 's', event.flow_out, event.pid, event.tid,
                  event.start_ns + event.duration_ns > 0
                      ? event.start_ns + event.duration_ns - 1
                      : event.start_ns);
    }
    if (event.flow_in != 0) {
      append_flow(line, 'f', event.flow_in, event.pid, event.tid,
                  event.start_ns);
    }
    out << line;
  }
  out << "\n]}\n";
  if (!out) {
    util::log_warn("trace write failed", {{"path", path}});
    return false;
  }
  if (buf.dropped > 0) {
    util::log_warn("trace buffer overflowed; events were dropped",
                   {{"kept", buf.events.size()}, {"dropped", buf.dropped}});
  }
  util::log_info("wrote trace",
                 {{"path", path}, {"events", buf.events.size()}});
  buf.events.clear();
  buf.events.shrink_to_fit();
  buf.dropped = 0;
  return true;
}

}  // namespace intooa::obs
