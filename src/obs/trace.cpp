#include "obs/trace.hpp"

#include <atomic>
#include <charconv>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace intooa::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

struct TraceBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::size_t capacity = kDefaultEventCapacity;
  std::size_t dropped = 0;
};

TraceBuffer& buffer() {
  // Intentionally leaked for the same reason as obs::registry(): a pool
  // worker may still be finishing a span (and, in a traced run, recording
  // an event) after main has entered static destruction.
  static TraceBuffer* instance = new TraceBuffer();
  return *instance;
}

/// Microseconds with sub-microsecond precision (Chrome's "ts"/"dur" unit).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  const double us = static_cast<double>(ns) / 1000.0;
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), us,
                                       std::chars_format::fixed, 3);
  if (ec == std::errc()) out.append(buf, ptr);
  else out.push_back('0');
}

void append_escaped_name(std::string& out, const char* name) {
  // Span names are code literals (dotted identifiers); escape defensively
  // anyway so a stray quote cannot corrupt the JSON.
  for (const char* p = name; *p; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void start_trace(std::size_t capacity) {
  TraceBuffer& buf = buffer();
  {
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.clear();
    buf.dropped = 0;
    buf.capacity = capacity > 0 ? capacity : kDefaultEventCapacity;
    buf.events.reserve(std::min<std::size_t>(buf.capacity, 4096));
  }
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void stop_trace() { g_trace_enabled.store(false, std::memory_order_relaxed); }

void trace_record(const char* name, std::uint64_t start_ns,
                  std::uint64_t duration_ns) {
  if (!trace_enabled()) return;
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= buf.capacity) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(
      TraceEvent{name, util::thread_ordinal(), start_ns, duration_ns});
}

std::size_t trace_event_count() {
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  return buf.events.size();
}

std::size_t trace_dropped_count() {
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  return buf.dropped;
}

bool write_trace(const std::string& path) {
  stop_trace();
  TraceBuffer& buf = buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);

  std::ofstream out(path);
  if (!out) {
    util::log_warn("cannot write trace file", {{"path", path}});
    return false;
  }

  // Streamed by hand instead of building one obs::Json tree: a full trace
  // can hold a million events and the flat writer keeps peak memory at one
  // line, not a second copy of the buffer.
  std::string line;
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << buf.dropped << "},\n\"traceEvents\":[\n";
  int max_tid = 0;
  for (const TraceEvent& event : buf.events) {
    if (event.tid > max_tid) max_tid = event.tid;
  }
  bool first = true;
  for (int tid = 0; tid <= max_tid; ++tid) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << (tid == 0 ? "main" : "worker")
        << "\"}}";
  }
  for (const TraceEvent& event : buf.events) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    line += "{\"name\":\"";
    append_escaped_name(line, event.name);
    line += "\",\"cat\":\"intooa\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    line += std::to_string(event.tid);
    line += ",\"ts\":";
    append_us(line, event.start_ns);
    line += ",\"dur\":";
    append_us(line, event.duration_ns);
    line += "}";
    out << line;
  }
  out << "\n]}\n";
  if (!out) {
    util::log_warn("trace write failed", {{"path", path}});
    return false;
  }
  if (buf.dropped > 0) {
    util::log_warn("trace buffer overflowed; events were dropped",
                   {{"kept", buf.events.size()}, {"dropped", buf.dropped}});
  }
  util::log_info("wrote trace",
                 {{"path", path}, {"events", buf.events.size()}});
  buf.events.clear();
  buf.events.shrink_to_fit();
  buf.dropped = 0;
  return true;
}

}  // namespace intooa::obs
