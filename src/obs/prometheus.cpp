#include "obs/prometheus.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace intooa::obs {

namespace {

void append_value(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc()) out.append(buf, ptr);
}

void append_header(std::string& out, const std::string& series,
                   std::string_view source, std::string_view type) {
  out += "# HELP ";
  out += series;
  out += " intooa metric ";
  out += source;
  out.push_back('\n');
  out += "# TYPE ";
  out += series;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

void append_quantile(std::string& out, const std::string& series,
                     const char* q, double v) {
  out += series;
  out += "{quantile=\"";
  out += q;
  out += "\"} ";
  append_value(out, v);
  out.push_back('\n');
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "intooa_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string series = prometheus_name(name) + "_total";
    append_header(out, series, name, "counter");
    out += series;
    out.push_back(' ');
    append_value(out, static_cast<double>(value));
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string series = prometheus_name(name);
    append_header(out, series, name, "gauge");
    out += series;
    out.push_back(' ');
    append_value(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string series = prometheus_name(name);
    append_header(out, series, name, "summary");
    if (hist.count > 0) {
      append_quantile(out, series, "0", static_cast<double>(hist.min));
      append_quantile(out, series, "0.5", hist.quantile(0.5));
      append_quantile(out, series, "0.9", hist.quantile(0.9));
      append_quantile(out, series, "0.99", hist.quantile(0.99));
      append_quantile(out, series, "1", static_cast<double>(hist.max));
    }
    out += series;
    out += "_sum ";
    append_value(out, static_cast<double>(hist.sum));
    out.push_back('\n');
    out += series;
    out += "_count ";
    append_value(out, static_cast<double>(hist.count));
    out.push_back('\n');
  }
  return out;
}

}  // namespace intooa::obs
