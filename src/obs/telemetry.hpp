#pragma once
// Shared bench-side telemetry wiring. Every bench binary constructs one
// BenchTelemetry from its parsed CLI:
//
//   const util::Cli cli(argc, argv);
//   obs::BenchTelemetry telemetry(
//       obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
//
// which applies --log-level {debug,info,warn,error,off} (falling back to
// the given default — Info for benches, while tests keep the global Warn),
// starts Chrome-trace collection for --trace <file>, and at scope exit
// writes the trace, dumps the metrics JSON for --metrics <file>, and logs
// the human-readable telemetry report. Everything here writes only to
// stderr and the side files, never stdout — bench tables and campaign CSVs
// are byte-identical with telemetry on or off.

#include <chrono>
#include <string>

#include "util/cli.hpp"
#include "util/log.hpp"

namespace intooa::obs {

struct TelemetryOptions {
  std::string trace_path;    ///< --trace FILE ("" = no trace)
  std::string metrics_path;  ///< --metrics FILE ("" = no JSON dump)

  /// Reads --trace / --metrics / --log-level. Throws std::invalid_argument
  /// on an unknown --log-level value.
  static TelemetryOptions from_cli(const util::Cli& cli,
                                   util::LogLevel default_level);
};

/// RAII bench telemetry session (see header comment). The most recently
/// constructed live instance is the process's "active" session, reachable
/// through finalize_active_telemetry() for exit paths that bypass stack
/// unwinding (std::exit in the campaign drain, daemon signal exits).
class BenchTelemetry {
 public:
  explicit BenchTelemetry(TelemetryOptions options);
  ~BenchTelemetry();

  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

  /// Flushes trace + metrics + report now (idempotent; the destructor calls
  /// it too). Exposed so tests can assert on the written files.
  void finalize();

  /// Seconds since construction (the report's observation window).
  double elapsed_seconds() const;

 private:
  TelemetryOptions options_;
  std::chrono::steady_clock::time_point start_;
  bool finalized_ = false;
};

/// Finalizes the process's active BenchTelemetry session now (trace +
/// metrics + report), if one exists and has not already been finalized.
/// Safe to call any number of times, with or without a live session. For
/// exit paths that skip destructors: std::exit after a campaign drain
/// signal would otherwise publish checkpoints but silently drop the
/// --trace/--metrics sidecars.
void finalize_active_telemetry();

}  // namespace intooa::obs
