#pragma once
// Minimal JSON value model used by the observability subsystem: the metrics
// report round-trips through it and the tests parse emitted Chrome trace
// files back for validation. Deliberately tiny — objects, arrays, strings,
// doubles, bools, null; no external dependencies.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace intooa::obs {

/// A parsed/buildable JSON value. Numbers are stored as double (all metric
/// values fit: counters stay below 2^53 in any realistic campaign).
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), number_(v) {}
  Json(int v) : type_(Type::Number), number_(v) {}
  Json(long v) : type_(Type::Number), number_(static_cast<double>(v)) {}
  Json(unsigned long v) : type_(Type::Number), number_(static_cast<double>(v)) {}
  Json(unsigned long long v)
      : type_(Type::Number), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_bool() const { return type_ == Type::Bool; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::map<std::string, Json>& members() const;

  /// Array append (value must be an array).
  void push_back(Json value);

  /// Object member access; creates the member on a mutable object. The
  /// const overload throws std::out_of_range for a missing key.
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const;

  /// Serializes. `indent` < 0 means compact single-line output; >= 0 adds
  /// newlines with `indent` spaces per depth level.
  std::string dump(int indent = -1) const;

  /// Parses `text`; throws std::runtime_error (with offset) on malformed
  /// input or trailing garbage.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace intooa::obs
