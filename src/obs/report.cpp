#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <vector>

#include "util/log.hpp"
#include "util/table.hpp"

namespace intooa::obs {

namespace {

double ns_to_seconds(std::uint64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

std::string fmt_us(double ns) { return util::fmt(ns / 1000.0, 4); }

}  // namespace

DerivedStats derive_stats(const MetricsSnapshot& snapshot,
                          double elapsed_seconds) {
  DerivedStats out;
  out.elapsed_seconds = elapsed_seconds;

  const auto hit_it = snapshot.counters.find("evaluator.cache_hit");
  const auto miss_it = snapshot.counters.find("evaluator.cache_miss");
  const std::uint64_t hits =
      hit_it == snapshot.counters.end() ? 0 : hit_it->second;
  const std::uint64_t misses =
      miss_it == snapshot.counters.end() ? 0 : miss_it->second;
  if (hits + misses > 0) {
    out.cache_hit_rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }

  const auto inc_it = snapshot.counters.find("gp.fit.incremental_hits");
  const auto full_it = snapshot.counters.find("gp.fit.full_refits");
  const std::uint64_t inc =
      inc_it == snapshot.counters.end() ? 0 : inc_it->second;
  const std::uint64_t full =
      full_it == snapshot.counters.end() ? 0 : full_it->second;
  if (inc + full > 0) {
    out.incremental_fit_rate =
        static_cast<double>(inc) / static_cast<double>(inc + full);
  }

  const auto task_it = snapshot.histograms.find("pool.task");
  const auto workers_it = snapshot.gauges.find("pool.workers");
  if (task_it != snapshot.histograms.end() &&
      workers_it != snapshot.gauges.end() && workers_it->second > 0.0 &&
      elapsed_seconds > 0.0) {
    out.pool_utilization = ns_to_seconds(task_it->second.sum) /
                           (workers_it->second * elapsed_seconds);
  }
  return out;
}

Json metrics_report_json(const MetricsSnapshot& snapshot,
                         double elapsed_seconds) {
  const DerivedStats stats = derive_stats(snapshot, elapsed_seconds);
  Json root = snapshot.to_json();
  root["elapsed_seconds"] = Json(elapsed_seconds);
  Json derived = Json::object();
  if (stats.pool_utilization >= 0.0) {
    derived["pool.utilization"] = Json(stats.pool_utilization);
  }
  if (stats.cache_hit_rate >= 0.0) {
    derived["evaluator.cache_hit_rate"] = Json(stats.cache_hit_rate);
  }
  if (stats.incremental_fit_rate >= 0.0) {
    derived["gp.fit.incremental_rate"] = Json(stats.incremental_fit_rate);
  }
  root["derived"] = std::move(derived);
  return root;
}

std::string render_report(const MetricsSnapshot& snapshot,
                          double elapsed_seconds) {
  std::string out = "== telemetry report (" +
                    util::fmt_fixed(elapsed_seconds, 2) + " s observed) ==\n";

  // Phase breakdown: duration histograms, heaviest first.
  std::vector<std::pair<std::string, const HistogramSnapshot*>> phases;
  std::vector<std::pair<std::string, const HistogramSnapshot*>> values;
  for (const auto& [name, hist] : snapshot.histograms) {
    (hist.unit == "ns" ? phases : values).emplace_back(name, &hist);
  }
  std::sort(phases.begin(), phases.end(),
            [](const auto& a, const auto& b) {
              return a.second->sum > b.second->sum;
            });

  if (!phases.empty()) {
    util::Table table({"phase", "count", "total s", "mean us", "min us",
                       "max us", "% wall"});
    for (const auto& [name, hist] : phases) {
      const double total_s = ns_to_seconds(hist->sum);
      table.add_row(
          {name, std::to_string(hist->count), util::fmt(total_s, 4),
           fmt_us(hist->mean()), fmt_us(static_cast<double>(hist->min)),
           fmt_us(static_cast<double>(hist->max)),
           elapsed_seconds > 0.0
               ? util::fmt_fixed(100.0 * total_s / elapsed_seconds, 1)
               : "-"});
    }
    out += table.to_ascii();
    out += "\n";
  }

  if (!values.empty()) {
    util::Table table({"distribution", "count", "mean", "min", "max"});
    for (const auto& [name, hist] : values) {
      table.add_row({name, std::to_string(hist->count),
                     util::fmt(hist->mean(), 4), std::to_string(hist->min),
                     std::to_string(hist->max)});
    }
    out += table.to_ascii();
    out += "\n";
  }

  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    util::Table table({"metric", "value"});
    for (const auto& [name, value] : snapshot.counters) {
      table.add_row({name, std::to_string(value)});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      table.add_row({name, util::fmt(value, 6)});
    }
    const DerivedStats stats = derive_stats(snapshot, elapsed_seconds);
    if (stats.cache_hit_rate >= 0.0) {
      table.add_row({"evaluator.cache_hit_rate (derived)",
                     util::fmt_fixed(stats.cache_hit_rate, 3)});
    }
    if (stats.pool_utilization >= 0.0) {
      table.add_row({"pool.utilization (derived)",
                     util::fmt_fixed(stats.pool_utilization, 3)});
    }
    if (stats.incremental_fit_rate >= 0.0) {
      table.add_row({"gp.fit.incremental_rate (derived)",
                     util::fmt_fixed(stats.incremental_fit_rate, 3)});
    }
    out += table.to_ascii();
  }
  return out;
}

bool write_metrics_report(const std::string& path,
                          const MetricsSnapshot& snapshot,
                          double elapsed_seconds) {
  std::ofstream out(path);
  if (!out) {
    util::log_warn("cannot write metrics file", {{"path", path}});
    return false;
  }
  out << metrics_report_json(snapshot, elapsed_seconds).dump(2) << '\n';
  if (!out) {
    util::log_warn("metrics write failed", {{"path", path}});
    return false;
  }
  util::log_info("wrote metrics", {{"path", path}});
  return true;
}

}  // namespace intooa::obs
