#pragma once
// Process-wide metrics registry: named counters, gauges and log2-scale
// histograms, designed so instrumentation inside runtime::ThreadPool workers
// never contends. Counters and histograms are sharded by thread across
// cache-line-padded relaxed atomics (a worker only ever touches its own
// shard); reads sum the shards. All update paths are wait-free and a
// disabled site costs exactly one relaxed atomic load and branch.
//
// Instrumentation is RNG-neutral by construction — nothing in this module
// draws randomness or feeds back into the optimization state — so campaign
// outputs are byte-identical with metrics/tracing on or off.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace intooa::obs {

/// Global metrics switch. Enabled by default (updates are cheap sharded
/// relaxed atomics); set_enabled(false) turns every instrumentation site
/// into a single relaxed-load branch.
bool enabled();
void set_enabled(bool on);

namespace detail {
extern std::atomic<bool> g_enabled;
/// Shard index of the calling thread (thread ordinal modulo shard count).
std::size_t shard_index();
/// Nanoseconds since a process-local monotonic origin.
std::uint64_t monotonic_ns();
}  // namespace detail

inline constexpr std::size_t kShardCount = 16;

/// Monotonically increasing event count. add() is wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    shards_[detail::shard_index()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShardCount> shards_{};
};

/// Last-written (or maximum) scalar. Unsharded: gauges are written rarely.
class Gauge {
 public:
  void set(double v) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (used for high-water marks).
  void set_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Unit tag carried into snapshots so reports know how to format values.
enum class Unit { None, Nanoseconds };

/// Read-side view of one histogram.
struct HistogramSnapshot {
  std::string unit;  ///< "" or "ns"
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  /// Sparse (bucket index, count) pairs; bucket b holds values in
  /// [2^(b-1), 2^b) for b > 0 and the value 0 for b == 0.
  std::vector<std::pair<int, std::uint64_t>> buckets;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Estimates the q-quantile (q in [0, 1]) by walking the cumulative
  /// bucket counts and interpolating linearly inside the target bucket,
  /// clamped to the exact [min, max] — so a single-sample histogram is
  /// exact and the error is bounded by one log2 bucket width. Returns 0
  /// for an empty histogram.
  double quantile(double q) const;
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Log2-bucketed distribution of non-negative integer samples (durations in
/// nanoseconds, matrix dimensions, queue depths). record() is wait-free.
class Histogram {
 public:
  explicit Histogram(Unit unit) : unit_(unit) {}

  void record(std::uint64_t v) {
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    record_always(v);
  }
  /// Update path without the enabled gate, for callers (spans) that already
  /// checked it and captured state while enabled.
  void record_always(std::uint64_t v);

  Unit unit() const { return unit_; }
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  static constexpr std::size_t kBuckets = 64;
  static int bucket_of(std::uint64_t v);

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~0ULL};
    std::atomic<std::uint64_t> max{0};
  };
  Unit unit_;
  std::array<Shard, kShardCount> shards_{};
};

/// Full registry snapshot; value-comparable and JSON round-trippable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  Json to_json() const;
  static MetricsSnapshot from_json(const Json& json);
  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Name -> metric map. Metrics are created on first use and never removed
/// (reset() zeroes them), so references returned here stay valid for the
/// process lifetime — instrumentation sites cache them in static locals.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First creation fixes the unit; later callers get the existing metric.
  Histogram& histogram(std::string_view name, Unit unit = Unit::None);

  MetricsSnapshot snapshot() const;
  /// Zeroes every registered metric (bench/test isolation). Concurrent
  /// updates are not lost-safe during the reset itself; call it between
  /// parallel phases.
  void reset();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry all instrumentation writes to.
Registry& registry();

/// Consistent point-in-time view of the process-wide registry (all 16
/// per-thread shards merged). Shorthand for registry().snapshot(), the
/// entry point live exposition (StatsResponse, --stats-file) is built on.
MetricsSnapshot snapshot();

}  // namespace intooa::obs
