#pragma once
// Prometheus text-exposition rendering of a MetricsSnapshot, for live
// scraping of intooa-served (StatsResponse --prometheus view and the
// --stats-file periodic writer). Dependency-free: emits text format
// version 0.0.4 directly.
//
// Naming scheme: every series is `intooa_` + the metric name with every
// byte outside [a-zA-Z0-9_:] replaced by '_' (so `svc.request_ns` becomes
// `intooa_svc_request_ns`). Counters additionally get the conventional
// `_total` suffix — which also keeps the counter `svc.connections`
// (accepted over the lifetime) and the gauge `svc.connections` (open right
// now) as distinct series. Histograms render as summaries: quantile="0.5",
// "0.9", "0.99" from HistogramSnapshot::quantile plus quantile="0"/"1"
// (exact min/max), then `_sum` and `_count`; an empty histogram emits only
// `_sum 0` / `_count 0`.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace intooa::obs {

/// Maps a registry metric name to its Prometheus series name (sanitized,
/// `intooa_`-prefixed; no `_total` suffix — the renderer adds that for
/// counters).
std::string prometheus_name(std::string_view name);

/// Renders the snapshot in Prometheus text-exposition format, one
/// `# HELP`/`# TYPE` pair per series, ending with a trailing newline.
std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace intooa::obs
