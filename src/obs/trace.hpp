#pragma once
// Chrome trace-event output. Spans (obs/span.hpp) append complete ("ph":"X")
// events while collection is on; write_trace() emits a JSON file loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing, with one timeline
// row per thread (the util::thread_ordinal of the emitting thread).
//
// The buffer is bounded: beyond kDefaultEventCapacity events new spans are
// counted but dropped, and the drop count is reported in the trace metadata
// and a warning — long full-scale campaigns would otherwise grow the buffer
// without bound. Metrics histograms still see every span.

#include <cstddef>
#include <cstdint>
#include <string>

namespace intooa::obs {

/// Process row the event renders under. Local spans live on kLocalPid;
/// spans reconstructed from a server's response trailer (svc::Client with
/// tracing on) land on kRemotePid so the merged view shows two process
/// lanes linked by flow arrows.
inline constexpr int kLocalPid = 1;
inline constexpr int kRemotePid = 2;

/// One buffered span occurrence. `name` must point at storage that outlives
/// the trace session; INTOOA_SPAN sites pass string literals.
struct TraceEvent {
  const char* name = nullptr;
  int pid = kLocalPid;
  int tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint64_t flow_in = 0;   ///< nonzero: a flow with this id ends here
  std::uint64_t flow_out = 0;  ///< nonzero: a flow with this id starts here
  std::uint64_t trace_id = 0;  ///< cross-process trace id (args; 0 = none)
  std::uint64_t span_id = 0;   ///< this span's id (args; 0 = none)
};

inline constexpr std::size_t kDefaultEventCapacity = 1u << 20;

/// True while span collection is on (single relaxed load; spans check this
/// after the metrics-enabled gate).
bool trace_enabled();

/// Starts collecting, clearing any previously buffered events. `capacity`
/// bounds the buffer (0 keeps kDefaultEventCapacity).
void start_trace(std::size_t capacity = 0);

/// Stops collecting without writing (buffered events are kept).
void stop_trace();

/// Appends one event if collection is on and capacity remains.
void trace_record(const char* name, std::uint64_t start_ns,
                  std::uint64_t duration_ns);

/// Same, with every TraceEvent field caller-controlled (pid, flow links,
/// propagated trace/span ids). `event.tid` is used as given — pass
/// util::thread_ordinal() for local spans.
void trace_record_event(const TraceEvent& event);

/// Number of buffered events / events dropped after the buffer filled.
std::size_t trace_event_count();
std::size_t trace_dropped_count();

/// Stops collection and writes the buffered events as Chrome trace-event
/// JSON to `path`. Returns false (with a warning logged) when the file
/// cannot be written. The buffer is cleared on success.
bool write_trace(const std::string& path);

}  // namespace intooa::obs
