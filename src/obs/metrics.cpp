#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "util/log.hpp"

namespace intooa::obs {

namespace detail {

std::atomic<bool> g_enabled{true};

std::size_t shard_index() {
  return static_cast<std::size_t>(util::thread_ordinal()) % kShardCount;
}

std::uint64_t monotonic_ns() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

}  // namespace detail

bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::set_max(double v) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  double current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_of(std::uint64_t v) {
  const int width = std::bit_width(v);  // 0 for v == 0
  return width < static_cast<int>(kBuckets) ? width
                                            : static_cast<int>(kBuckets) - 1;
}

void Histogram::record_always(std::uint64_t v) {
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = shard.min.load(std::memory_order_relaxed);
  while (v < seen &&
         !shard.min.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (v > seen &&
         !shard.max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min);
  if (q >= 1.0) return static_cast<double>(max);
  // Target rank in (0, count]; walk cumulative counts to the bucket that
  // holds it, then interpolate linearly across that bucket's value range.
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  double estimate = static_cast<double>(max);
  for (const auto& [bucket, n] : buckets) {
    const double next = cumulative + static_cast<double>(n);
    if (rank <= next) {
      // Bucket b > 0 spans [2^(b-1), 2^b); bucket 0 holds only the value 0.
      const double lo = bucket == 0 ? 0.0 : std::ldexp(1.0, bucket - 1);
      const double hi = bucket == 0 ? 0.0 : std::ldexp(1.0, bucket);
      const double frac = (rank - cumulative) / static_cast<double>(n);
      estimate = lo + frac * (hi - lo);
      break;
    }
    cumulative = next;
  }
  // The exact extremes are tracked; clamping makes single-sample and
  // single-bucket-tail estimates exact instead of bucket-boundary guesses.
  return std::clamp(estimate, static_cast<double>(min),
                    static_cast<double>(max));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.unit = unit_ == Unit::Nanoseconds ? "ns" : "";
  std::array<std::uint64_t, kBuckets> totals{};
  std::uint64_t min = ~0ULL;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      totals[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
    const std::uint64_t shard_min = shard.min.load(std::memory_order_relaxed);
    if (shard_min < min) min = shard_min;
    const std::uint64_t shard_max = shard.max.load(std::memory_order_relaxed);
    if (shard_max > out.max) out.max = shard_max;
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (totals[b] == 0) continue;
    out.count += totals[b];
    out.buckets.emplace_back(static_cast<int>(b), totals[b]);
  }
  out.min = out.count == 0 ? 0 : min;
  return out;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& count : shard.counts) count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(~0ULL, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

Counter& Registry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, Unit unit) {
  {
    std::shared_lock lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>(unit);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::shared_lock lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms[name] = histogram->snapshot();
  }
  return out;
}

void Registry::reset() {
  std::shared_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

Registry& registry() {
  // Intentionally leaked. A ThreadPool worker fulfills a task's future
  // inside job() and only then closes its pool.task span, so main can
  // return from future.get(), reach exit and run static destructors while
  // the worker is still inside ScopedSpan::finish(). Leaking keeps the
  // registry valid for those last few instructions (and for the workers the
  // global pool joins during static destruction); the static pointer keeps
  // it reachable, so LeakSanitizer stays quiet.
  static Registry* instance = new Registry();
  return *instance;
}

MetricsSnapshot snapshot() { return registry().snapshot(); }

Json MetricsSnapshot::to_json() const {
  Json root = Json::object();
  Json counters_json = Json::object();
  for (const auto& [name, value] : counters) {
    counters_json[name] = Json(static_cast<double>(value));
  }
  Json gauges_json = Json::object();
  for (const auto& [name, value] : gauges) gauges_json[name] = Json(value);
  Json histograms_json = Json::object();
  for (const auto& [name, hist] : histograms) {
    Json h = Json::object();
    h["unit"] = Json(hist.unit);
    h["count"] = Json(static_cast<double>(hist.count));
    h["sum"] = Json(static_cast<double>(hist.sum));
    h["min"] = Json(static_cast<double>(hist.min));
    h["max"] = Json(static_cast<double>(hist.max));
    Json buckets = Json::array();
    for (const auto& [bucket, count] : hist.buckets) {
      Json pair = Json::array();
      pair.push_back(Json(bucket));
      pair.push_back(Json(static_cast<double>(count)));
      buckets.push_back(std::move(pair));
    }
    h["buckets"] = std::move(buckets);
    histograms_json[name] = std::move(h);
  }
  root["counters"] = std::move(counters_json);
  root["gauges"] = std::move(gauges_json);
  root["histograms"] = std::move(histograms_json);
  return root;
}

MetricsSnapshot MetricsSnapshot::from_json(const Json& json) {
  MetricsSnapshot out;
  for (const auto& [name, value] : json.at("counters").members()) {
    out.counters[name] = static_cast<std::uint64_t>(value.as_number());
  }
  for (const auto& [name, value] : json.at("gauges").members()) {
    out.gauges[name] = value.as_number();
  }
  for (const auto& [name, value] : json.at("histograms").members()) {
    HistogramSnapshot hist;
    hist.unit = value.at("unit").as_string();
    hist.count = static_cast<std::uint64_t>(value.at("count").as_number());
    hist.sum = static_cast<std::uint64_t>(value.at("sum").as_number());
    hist.min = static_cast<std::uint64_t>(value.at("min").as_number());
    hist.max = static_cast<std::uint64_t>(value.at("max").as_number());
    for (const Json& pair : value.at("buckets").items()) {
      if (pair.size() != 2) {
        throw std::runtime_error("MetricsSnapshot: malformed bucket");
      }
      hist.buckets.emplace_back(
          static_cast<int>(pair.items()[0].as_number()),
          static_cast<std::uint64_t>(pair.items()[1].as_number()));
    }
    out.histograms[name] = std::move(hist);
  }
  return out;
}

}  // namespace intooa::obs
