#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace intooa::obs {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::logic_error(std::string("Json: value is not ") + want);
}

// Length (2..4) of a well-formed UTF-8 sequence starting at s[i], or 0 if
// the bytes there are not valid UTF-8 (bad lead byte, truncated or wrong
// continuation bytes, overlong encoding, surrogate, > U+10FFFF).
std::size_t utf8_sequence_length(const std::string& s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t len = 0;
  unsigned code = 0;
  if ((lead & 0xE0) == 0xC0) {
    len = 2;
    code = lead & 0x1Fu;
  } else if ((lead & 0xF0) == 0xE0) {
    len = 3;
    code = lead & 0x0Fu;
  } else if ((lead & 0xF8) == 0xF0) {
    len = 4;
    code = lead & 0x07u;
  } else {
    return 0;  // lone continuation byte or invalid lead (0x80-0xC1, 0xF8+)
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) return 0;
    code = (code << 6) | (byte(i + k) & 0x3Fu);
  }
  static constexpr unsigned kMinCode[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (code < kMinCode[len]) return 0;                 // overlong
  if (code >= 0xD800 && code <= 0xDFFF) return 0;     // surrogate
  if (code > 0x10FFFF) return 0;                      // beyond Unicode
  return len;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    const unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x80) {
      // Pass well-formed UTF-8 through verbatim; replace anything else with
      // U+FFFD so the output is always valid JSON (and valid UTF-8).
      if (const std::size_t len = utf8_sequence_length(s, i); len != 0) {
        out.append(s, i, len);
        i += len;
      } else {
        out += "\xEF\xBF\xBD";
        ++i;
      }
      continue;
    }
    ++i;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) throw std::runtime_error("Json: number format");
  out.append(buf, ptr);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("Json::parse: " + std::string(what) +
                             " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail("unexpected character");
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    if (consume_word("null")) return Json(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8 (no surrogate-pair handling: the metrics/trace
          // emitters never produce non-BMP characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Json(value);
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      if (consume(']')) return out;
      expect(',');
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      if (consume('}')) return out;
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) type_error("an array");
  return array_;
}

const std::map<std::string, Json>& Json::members() const {
  if (type_ != Type::Object) type_error("an object");
  return object_;
}

void Json::push_back(Json value) {
  if (type_ != Type::Array) type_error("an array");
  array_.push_back(std::move(value));
}

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::Object) type_error("an object");
  return object_[key];
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::Object) type_error("an object");
  const auto it = object_.find(key);
  if (it == object_.end()) {
    throw std::out_of_range("Json: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::Object && object_.count(key) > 0;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  type_error("an array or object");
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, number_); break;
    case Type::String: append_escaped(out, string_); break;
    case Type::Array: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        append_escaped(out, key);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        value.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::Null: return true;
    case Json::Type::Bool: return a.bool_ == b.bool_;
    case Json::Type::Number: return a.number_ == b.number_;
    case Json::Type::String: return a.string_ == b.string_;
    case Json::Type::Array: return a.array_ == b.array_;
    case Json::Type::Object: return a.object_ == b.object_;
  }
  return false;
}

}  // namespace intooa::obs
