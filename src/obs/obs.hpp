#pragma once
// Umbrella header for intooa::obs — the observability subsystem: metrics
// registry (obs/metrics.hpp), RAII spans (obs/span.hpp), Chrome trace
// output (obs/trace.hpp), Prometheus exposition (obs/prometheus.hpp),
// telemetry reports (obs/report.hpp) and bench CLI wiring
// (obs/telemetry.hpp). See docs/OBSERVABILITY.md for the metric name
// catalogue.

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
