#pragma once
// Campaign telemetry report: turns a MetricsSnapshot into (a) a metrics
// JSON document with derived statistics (pool utilization, cache hit rate)
// and (b) a human-readable table of per-phase wall time and counters, the
// per-phase cost breakdown the ROADMAP's scaling work is justified against.

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace intooa::obs {

/// Derived statistics computed from a snapshot plus the observation window.
struct DerivedStats {
  double elapsed_seconds = 0.0;
  /// span histogram "pool.task" busy time / (workers * elapsed); negative
  /// when no pool was active (threads = 1 or nothing ran on the pool).
  double pool_utilization = -1.0;
  /// evaluator.cache_hit / (hit + miss); negative when no lookups happened.
  double cache_hit_rate = -1.0;
  /// gp.fit.incremental_hits / (incremental_hits + full_refits): the share
  /// of GP grid factorization work served by O(n^2) border updates instead
  /// of full refactorizations; negative when no WL-GP fits ran.
  double incremental_fit_rate = -1.0;
};

DerivedStats derive_stats(const MetricsSnapshot& snapshot,
                          double elapsed_seconds);

/// Full metrics document: {"elapsed_seconds", "derived", "counters",
/// "gauges", "histograms"}. MetricsSnapshot::from_json accepts it (the
/// extra top-level members are ignored on the way back in).
Json metrics_report_json(const MetricsSnapshot& snapshot,
                         double elapsed_seconds);

/// Renders the human-readable report: a per-phase wall-time table (one row
/// per duration histogram, sorted by total time), value histograms,
/// counters, gauges and the derived statistics.
std::string render_report(const MetricsSnapshot& snapshot,
                          double elapsed_seconds);

/// Writes metrics_report_json(...) (pretty-printed) to `path`. Returns
/// false with a warning logged when the file cannot be written.
bool write_metrics_report(const std::string& path,
                          const MetricsSnapshot& snapshot,
                          double elapsed_seconds);

}  // namespace intooa::obs
