#include "obs/span.hpp"

#include "obs/trace.hpp"

namespace intooa::obs {

void ScopedSpan::finish() noexcept {
  const std::uint64_t end_ns = detail::monotonic_ns();
  const std::uint64_t duration_ns = end_ns - start_ns_;
  try {
    // record_always: the enabled gate already passed at construction, and
    // gating again here could lose the matching exit of a span that was
    // open while set_enabled flipped.
    registry().histogram(name_, Unit::Nanoseconds).record_always(duration_ns);
    if (trace_enabled()) trace_record(name_, start_ns_, duration_ns);
  } catch (...) {
    // Instrumentation must never take down the measured code path
    // (registry() can throw bad_alloc on first-use allocation).
  }
}

}  // namespace intooa::obs
