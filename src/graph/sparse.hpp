#pragma once
// Sparse non-negative integer-count feature vectors. WL features live in a
// growing label space (new labels appear as new structures are discovered),
// so a sorted index->count representation keeps kernels cheap and lets the
// GP gradient code address features by stable global label id.

#include <cstddef>
#include <string>
#include <vector>

namespace intooa::graph {

/// Sorted sparse vector of (index, value) pairs with value semantics.
/// Indices are global WL label ids; values are label occurrence counts
/// (doubles so gradient code can reuse the type).
class SparseVec {
 public:
  SparseVec() = default;

  /// Adds `delta` at `index` (creates the entry if absent; entries that
  /// become zero are kept — counts never go negative in WL usage).
  void add(std::size_t index, double delta);

  /// Value at `index`, 0.0 when absent.
  double get(std::size_t index) const;

  /// Number of stored entries.
  std::size_t nnz() const { return entries_.size(); }

  /// Largest stored index + 1 (0 when empty).
  std::size_t dim() const;

  /// Stored entries, sorted by index.
  const std::vector<std::pair<std::size_t, double>>& entries() const {
    return entries_;
  }

  /// Dense expansion of length max(dim(), n).
  std::vector<double> to_dense(std::size_t n = 0) const;

  /// Sum of values (total label count).
  double sum() const;

  /// Euclidean norm.
  double norm() const;

  bool operator==(const SparseVec&) const = default;

 private:
  std::vector<std::pair<std::size_t, double>> entries_;
};

/// Sparse dot product — the WL kernel of Eq. 2 is dot(features(G),
/// features(G')).
double dot(const SparseVec& a, const SparseVec& b);

/// Human-readable "{idx:count, ...}" rendering for debugging and the
/// feature-extraction example.
std::string to_string(const SparseVec& v);

}  // namespace intooa::graph
