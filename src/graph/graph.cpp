#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace intooa::graph {

NodeId Graph::add_node(std::string label) {
  labels_.push_back(std::move(label));
  adjacency_.emplace_back();
  return labels_.size() - 1;
}

void Graph::add_edge(NodeId a, NodeId b) {
  check(a);
  check(b);
  if (a == b) throw std::invalid_argument("Graph::add_edge: self-loop");
  if (has_edge(a, b)) return;
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId v) {
    list.insert(std::upper_bound(list.begin(), list.end(), v), v);
  };
  insert_sorted(adjacency_[a], b);
  insert_sorted(adjacency_[b], a);
  ++edge_count_;
}

const std::string& Graph::label(NodeId id) const {
  check(id);
  return labels_[id];
}

const std::vector<NodeId>& Graph::neighbors(NodeId id) const {
  check(id);
  return adjacency_[id];
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  check(a);
  check(b);
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

bool Graph::is_connected() const {
  if (labels_.empty()) return true;
  std::vector<bool> seen(labels_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (NodeId next : adjacency_[cur]) {
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        stack.push_back(next);
      }
    }
  }
  return visited == labels_.size();
}

std::string Graph::to_string() const {
  std::string out;
  for (NodeId id = 0; id < labels_.size(); ++id) {
    out += std::to_string(id) + " [" + labels_[id] + "]:";
    for (NodeId n : adjacency_[id]) out += " " + std::to_string(n);
    out += "\n";
  }
  return out;
}

void Graph::check(NodeId id) const {
  if (id >= labels_.size()) {
    throw std::out_of_range("Graph: node id out of range");
  }
}

}  // namespace intooa::graph
