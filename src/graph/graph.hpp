#pragma once
// Labeled undirected graph — the circuit-graph representation of Sec. III-A.
// Both circuit nodes (vin, v1, ...) and subcircuits (R, C, +gm, RCs, ...)
// become graph nodes carrying a string label; connections become undirected
// edges. Loops (feedback/feedforward cycles) are naturally representable,
// which is the paper's first advantage over the DAGs of [16].

#include <cstddef>
#include <string>
#include <vector>

namespace intooa::graph {

/// Node identifier within one Graph.
using NodeId = std::size_t;

/// Undirected labeled graph with value semantics. Parallel edges are
/// collapsed (the WL relabeling of [17] is defined on neighbor *sets* with
/// multiplicity — we keep multiplicity by storing neighbor lists, but
/// adding the same edge twice is idempotent). Self-loops are rejected: a
/// subcircuit never connects a node to itself in this design space.
class Graph {
 public:
  Graph() = default;

  /// Adds a node with the given label; returns its id (ids are dense,
  /// starting at 0, in insertion order).
  NodeId add_node(std::string label);

  /// Adds an undirected edge between two existing nodes. Duplicate edges
  /// are ignored; self-loops throw std::invalid_argument.
  void add_edge(NodeId a, NodeId b);

  std::size_t node_count() const { return labels_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Label of node `id` (bounds-checked).
  const std::string& label(NodeId id) const;

  /// Neighbor list of node `id`, sorted ascending (bounds-checked).
  const std::vector<NodeId>& neighbors(NodeId id) const;

  /// True if an edge {a, b} exists.
  bool has_edge(NodeId a, NodeId b) const;

  /// All labels indexed by node id.
  const std::vector<std::string>& labels() const { return labels_; }

  /// True when every node can reach node 0 (or the graph is empty). Valid
  /// op-amp circuit graphs are connected; this check guards against
  /// malformed topology encodings.
  bool is_connected() const;

  /// Human-readable adjacency dump used by examples and failure messages.
  std::string to_string() const;

  /// Structural equality: same labels in the same node order and the same
  /// edge set. (Not isomorphism — circuit graphs are built deterministically
  /// from topology vectors, so node order is canonical.)
  bool operator==(const Graph&) const = default;

 private:
  void check(NodeId id) const;

  std::vector<std::string> labels_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace intooa::graph
