#pragma once
// Weisfeiler–Lehman subtree features and kernel (Shervashidze et al. [17]),
// specialized for circuit graphs as in Sec. III-B of the paper.
//
// A WlFeaturizer owns a *persistent, shared* label dictionary: the same
// subcircuit structure maps to the same global feature index in every graph
// it has ever featurized. This is what makes the WL-GP gradient
// interpretable — feature j always denotes one specific circuit structure,
// whose human-readable description the featurizer can report
// (`provenance(j)`).

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/sparse.hpp"

namespace intooa::graph {

/// WL feature extractor with a growing shared label dictionary.
class WlFeaturizer {
 public:
  /// `max_h` bounds the iteration depth accepted by `features` (the paper
  /// notes h <= 6 suffices for these 13-node circuit graphs).
  explicit WlFeaturizer(int max_h = 6);

  /// Extracts the WL feature vector of `g` with `h` refinement iterations:
  /// the concatenated label counts of iterations 0..h (Fig. 4 of the
  /// paper). New structures extend the shared dictionary; indices of
  /// previously seen structures are stable.
  SparseVec features(const Graph& g, int h);

  /// Per-node compressed label ids at each refinement depth:
  /// result[d][v] is the global feature id of node v after d iterations
  /// (d = 0..h). This is the node-to-structure attribution used by the
  /// interpretability layer: the depth-1 id of a subcircuit node uniquely
  /// names that subcircuit-in-context (e.g. "-gmRs{v2,vin}").
  std::vector<std::vector<std::size_t>> node_labels(const Graph& g, int h);

  /// Maximum iteration depth this featurizer accepts.
  int max_h() const { return max_h_; }

  /// Total number of distinct labels (= feature dimensions) discovered so
  /// far across all featurized graphs.
  std::size_t label_count() const { return provenance_.size(); }

  /// WL iteration depth at which feature `id` appears (0 = raw node label).
  int depth_of(std::size_t id) const;

  /// Human-readable description of the circuit structure feature `id`
  /// counts. Depth-0 features are plain node labels ("RCs", "v1", ...);
  /// deeper features show the rooted subtree, e.g. "RCs{v1,vout}".
  const std::string& provenance(std::size_t id) const;

 private:
  std::size_t intern(const std::string& signature, int depth,
                     std::string provenance);

  int max_h_;
  std::unordered_map<std::string, std::size_t> ids_;
  std::vector<std::string> provenance_;
  std::vector<int> depth_;
};

/// Restriction of a full-depth feature vector to the entries of WL depth
/// <= h (the per-h feature view of Eq. 2). Full-depth vectors are computed
/// once per graph; every depth the hyperparameter search considers is a
/// filter of that one vector.
SparseVec filter_by_depth(const SparseVec& full, const WlFeaturizer& featurizer,
                          int h);

/// WL kernel of Eq. 2: inner product of the two graphs' feature vectors
/// under a shared featurizer.
double wl_kernel(WlFeaturizer& featurizer, const Graph& a, const Graph& b,
                 int h);

/// Cosine-normalized variant k(a,b)/sqrt(k(a,a) k(b,b)); used by the WL-GP
/// where it improves conditioning (self-similarity becomes exactly 1).
double wl_kernel_normalized(WlFeaturizer& featurizer, const Graph& a,
                            const Graph& b, int h);

}  // namespace intooa::graph
