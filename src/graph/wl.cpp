#include "graph/wl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace intooa::graph {

WlFeaturizer::WlFeaturizer(int max_h) : max_h_(max_h) {
  if (max_h < 0) throw std::invalid_argument("WlFeaturizer: max_h < 0");
}

std::size_t WlFeaturizer::intern(const std::string& signature, int depth,
                                 std::string provenance) {
  const auto [it, inserted] = ids_.try_emplace(signature, provenance_.size());
  if (inserted) {
    provenance_.push_back(std::move(provenance));
    depth_.push_back(depth);
  }
  return it->second;
}

std::vector<std::vector<std::size_t>> WlFeaturizer::node_labels(const Graph& g,
                                                                int h) {
  if (h < 0 || h > max_h_) {
    throw std::invalid_argument("WlFeaturizer::node_labels: h out of range");
  }
  const std::size_t n = g.node_count();
  std::vector<std::vector<std::size_t>> levels;
  levels.reserve(static_cast<std::size_t>(h) + 1);

  // Iteration 0: raw node labels.
  std::vector<std::size_t> current(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::string& label = g.label(v);
    current[v] = intern("0|" + label, 0, label);
  }
  levels.push_back(current);

  // Iterations 1..h: neighborhood aggregation + label compression. The
  // signature uses compressed integer ids (the "hash" of Fig. 4(c)); the
  // provenance string keeps the readable rooted-subtree expansion.
  std::vector<std::size_t> next(n);
  for (int iter = 1; iter <= h; ++iter) {
    for (NodeId v = 0; v < n; ++v) {
      std::vector<std::size_t> neigh;
      neigh.reserve(g.neighbors(v).size());
      for (NodeId u : g.neighbors(v)) neigh.push_back(current[u]);
      std::sort(neigh.begin(), neigh.end());

      std::string signature =
          std::to_string(iter) + "|" + std::to_string(current[v]) + "(";
      std::string readable = provenance_[current[v]] + "{";
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        if (i) {
          signature += ",";
          readable += ",";
        }
        signature += std::to_string(neigh[i]);
        readable += provenance_[neigh[i]];
      }
      signature += ")";
      readable += "}";
      next[v] = intern(signature, iter, std::move(readable));
    }
    current = next;
    levels.push_back(current);
  }
  return levels;
}

SparseVec WlFeaturizer::features(const Graph& g, int h) {
  INTOOA_SPAN("wl.featurize");
  SparseVec phi;
  for (const auto& level : node_labels(g, h)) {
    for (std::size_t id : level) phi.add(id, 1.0);
  }
  static obs::Gauge& label_gauge = obs::registry().gauge("wl.label_count");
  label_gauge.set_max(static_cast<double>(label_count()));
  return phi;
}

int WlFeaturizer::depth_of(std::size_t id) const {
  if (id >= depth_.size()) {
    throw std::out_of_range("WlFeaturizer::depth_of: unknown label id");
  }
  return depth_[id];
}

const std::string& WlFeaturizer::provenance(std::size_t id) const {
  if (id >= provenance_.size()) {
    throw std::out_of_range("WlFeaturizer::provenance: unknown label id");
  }
  return provenance_[id];
}

SparseVec filter_by_depth(const SparseVec& full, const WlFeaturizer& featurizer,
                          int h) {
  SparseVec out;
  for (const auto& [idx, val] : full.entries()) {
    if (featurizer.depth_of(idx) <= h) out.add(idx, val);
  }
  return out;
}

double wl_kernel(WlFeaturizer& featurizer, const Graph& a, const Graph& b,
                 int h) {
  return dot(featurizer.features(a, h), featurizer.features(b, h));
}

double wl_kernel_normalized(WlFeaturizer& featurizer, const Graph& a,
                            const Graph& b, int h) {
  const SparseVec fa = featurizer.features(a, h);
  const SparseVec fb = featurizer.features(b, h);
  const double denom = fa.norm() * fb.norm();
  if (denom == 0.0) return 0.0;
  return dot(fa, fb) / denom;
}

}  // namespace intooa::graph
