#include "graph/sparse.hpp"

#include <algorithm>
#include <cmath>

namespace intooa::graph {

void SparseVec::add(std::size_t index, double delta) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const auto& entry, std::size_t idx) { return entry.first < idx; });
  if (it != entries_.end() && it->first == index) {
    it->second += delta;
  } else {
    entries_.insert(it, {index, delta});
  }
}

double SparseVec::get(std::size_t index) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const auto& entry, std::size_t idx) { return entry.first < idx; });
  if (it != entries_.end() && it->first == index) return it->second;
  return 0.0;
}

std::size_t SparseVec::dim() const {
  return entries_.empty() ? 0 : entries_.back().first + 1;
}

std::vector<double> SparseVec::to_dense(std::size_t n) const {
  std::vector<double> out(std::max(n, dim()), 0.0);
  for (const auto& [idx, val] : entries_) out[idx] = val;
  return out;
}

double SparseVec::sum() const {
  double acc = 0.0;
  for (const auto& [idx, val] : entries_) acc += val;
  return acc;
}

double SparseVec::norm() const {
  double acc = 0.0;
  for (const auto& [idx, val] : entries_) acc += val * val;
  return std::sqrt(acc);
}

double dot(const SparseVec& a, const SparseVec& b) {
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].first < eb[j].first) {
      ++i;
    } else if (eb[j].first < ea[i].first) {
      ++j;
    } else {
      acc += ea[i].second * eb[j].second;
      ++i;
      ++j;
    }
  }
  return acc;
}

std::string to_string(const SparseVec& v) {
  std::string out = "{";
  bool first = true;
  for (const auto& [idx, val] : v.entries()) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(idx) + ":" + std::to_string(val);
  }
  return out + "}";
}

}  // namespace intooa::graph
