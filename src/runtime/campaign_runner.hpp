#pragma once
// Campaign fan-out: runs a set of independent, individually-seeded jobs
// (one per (seed, method) optimization run) across the thread pool and
// returns the results in job order.
//
// Determinism contract: a job's body may depend only on the job itself
// (name, seed, index) — never on shared mutable state or on which other
// jobs have finished. Under that contract the result vector is identical
// for any thread count, which is what lets the bench driver aggregate
// FoM curves from parallel runs byte-for-byte equal to the serial path.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace intooa::runtime {

/// One independent unit of campaign work.
struct CampaignJob {
  std::string name;        ///< progress-log label ("INTO-OA on S-1: run 3/10")
  std::uint64_t seed = 0;  ///< the job's private top-level rng seed
  std::size_t index = 0;   ///< position in the campaign (checkpoint naming)
};

/// Fans campaign jobs across a pool with per-job progress/wall-time logging.
class CampaignRunner {
 public:
  /// `pool` may be nullptr for serial execution (the --threads 1 path).
  explicit CampaignRunner(ThreadPool* pool) : pool_(pool) {}

  /// Runs every job and returns the results in job order. Exceptions follow
  /// parallel_for semantics: all jobs run, the lowest failing index's
  /// exception is rethrown.
  template <typename Result>
  std::vector<Result> run(
      const std::vector<CampaignJob>& jobs,
      const std::function<Result(const CampaignJob&)>& body) const {
    return parallel_map(pool_, jobs.size(), [&](std::size_t i) {
      log_job_start(jobs[i], jobs.size());
      const double start = monotonic_seconds();
      Result result = body(jobs[i]);
      log_job_done(jobs[i], jobs.size(), monotonic_seconds() - start);
      return result;
    });
  }

 private:
  static void log_job_start(const CampaignJob& job, std::size_t total);
  static void log_job_done(const CampaignJob& job, std::size_t total,
                           double elapsed_seconds);
  static double monotonic_seconds();

  ThreadPool* pool_;
};

}  // namespace intooa::runtime
