#include "runtime/thread_pool.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace intooa::runtime {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least 1 worker");
  }
  obs::registry().gauge("pool.workers").set_max(static_cast<double>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  static obs::Counter& task_counter = obs::registry().counter("pool.tasks");
  static obs::Gauge& depth_gauge =
      obs::registry().gauge("pool.queue_depth_max");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      throw std::logic_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
    depth_gauge.set_max(static_cast<double>(queue_.size()));
  }
  task_counter.add();
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // The span's histogram sum is the pool's total busy time — the
    // numerator of the telemetry report's worker-utilization figure.
    INTOOA_SPAN("pool.task");
    job();  // exceptions are captured by the packaged_task wrapper
  }
}

}  // namespace intooa::runtime
