#include "runtime/checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "util/fs.hpp"
#include "util/log.hpp"

namespace intooa::runtime {

namespace {

/// Versioned magic line. The family prefix identifies the file type; the
/// trailing number is the format version, so a checkpoint written by an
/// incompatible build is rejected with a clear message instead of being
/// parsed into garbage.
constexpr const char* kMagicFamily = "intooa-evaluator-checkpoint v";
constexpr const char* kMagic = "intooa-evaluator-checkpoint v1";

/// Shortest decimal representation that parses back to exactly `v`.
std::string exact(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) throw std::runtime_error("checkpoint: to_chars");
  return std::string(buf, ptr);
}

bool parse_double(std::istream& in, double& v) {
  std::string token;
  if (!(in >> token)) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parse_size(std::istream& in, std::size_t& v) {
  std::string token;
  if (!(in >> token)) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), v);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parse_bool(std::istream& in, bool& v) {
  std::string token;
  if (!(in >> token)) return false;
  if (token != "0" && token != "1") return false;
  v = token == "1";
  return true;
}

void write_point(std::ostream& out, const sizing::EvalPoint& point) {
  out << (point.perf.valid ? 1 : 0) << ' ' << exact(point.perf.gain_db) << ' '
      << exact(point.perf.gbw_hz) << ' ' << exact(point.perf.pm_deg) << ' '
      << exact(point.perf.power_w) << ' ' << exact(point.fom);
  for (double m : point.margins) out << ' ' << exact(m);
  out << ' ' << (point.feasible ? 1 : 0) << ' ' << point.perf.failure << '\n';
}

bool read_point(std::istream& in, sizing::EvalPoint& point) {
  if (!parse_bool(in, point.perf.valid)) return false;
  if (!parse_double(in, point.perf.gain_db)) return false;
  if (!parse_double(in, point.perf.gbw_hz)) return false;
  if (!parse_double(in, point.perf.pm_deg)) return false;
  if (!parse_double(in, point.perf.power_w)) return false;
  if (!parse_double(in, point.fom)) return false;
  for (double& m : point.margins) {
    if (!parse_double(in, m)) return false;
  }
  if (!parse_bool(in, point.feasible)) return false;
  // The failure reason is free text: the rest of the line (possibly empty).
  std::getline(in, point.perf.failure);
  if (!point.perf.failure.empty() && point.perf.failure.front() == ' ') {
    point.perf.failure.erase(0, 1);
  }
  return true;
}

bool expect_keyword(std::istream& in, const char* keyword) {
  std::string token;
  return (in >> token) && token == keyword;
}

/// Parses the whole stream into records; returns false on any defect so
/// the caller can reject the file without having touched the evaluator.
bool parse_checkpoint(std::istream& in, const std::string& token,
                      std::vector<core::EvalRecord>& records,
                      std::size_t& total_simulations) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    if (line.rfind(kMagicFamily, 0) == 0) {
      util::log_error(
          "checkpoint written by an incompatible version (file magic \"" +
          line + "\", this build reads \"" + kMagic +
          "\"); delete it or use a matching build");
    }
    return false;
  }
  if (!std::getline(in, line) || line != "token " + token) return false;

  std::size_t record_count = 0;
  if (!expect_keyword(in, "records") || !parse_size(in, record_count)) {
    return false;
  }
  if (!expect_keyword(in, "sims") || !parse_size(in, total_simulations)) {
    return false;
  }

  records.clear();
  records.reserve(record_count);
  for (std::size_t r = 0; r < record_count; ++r) {
    core::EvalRecord record;
    std::size_t topo_index = 0;
    if (!expect_keyword(in, "record") || !parse_size(in, topo_index)) {
      return false;
    }
    try {
      record.topology = circuit::Topology::from_index(topo_index);
    } catch (const std::exception&) {
      return false;
    }
    record.sized.topology = record.topology;
    if (!parse_size(in, record.sims_before)) return false;
    if (!parse_size(in, record.sized.simulations)) return false;

    std::size_t value_count = 0;
    if (!expect_keyword(in, "values") || !parse_size(in, value_count)) {
      return false;
    }
    record.sized.best_values.resize(value_count);
    for (double& v : record.sized.best_values) {
      if (!parse_double(in, v)) return false;
    }

    if (!expect_keyword(in, "best") || !read_point(in, record.sized.best)) {
      return false;
    }

    std::size_t hist_count = 0;
    if (!expect_keyword(in, "hist") || !parse_size(in, hist_count)) {
      return false;
    }
    record.sized.history.resize(hist_count);
    for (auto& point : record.sized.history) {
      if (!expect_keyword(in, "p") || !read_point(in, point)) return false;
    }
    records.push_back(std::move(record));
  }
  if (!expect_keyword(in, "end")) return false;

  // Consistency: the stored counter must equal the sum of per-record costs.
  std::size_t sum = 0;
  for (const auto& record : records) sum += record.sized.simulations;
  return sum == total_simulations;
}

}  // namespace

void save_evaluator_checkpoint(const std::string& path,
                               const std::string& token,
                               const core::TopologyEvaluator& evaluator) {
  INTOOA_SPAN("checkpoint.save");
  std::ostringstream out;
  out << kMagic << '\n';
  out << "token " << token << '\n';
  out << "records " << evaluator.history().size() << '\n';
  out << "sims " << evaluator.total_simulations() << '\n';
  for (const auto& record : evaluator.history()) {
    out << "record " << record.topology.index() << ' ' << record.sims_before
        << ' ' << record.sized.simulations << '\n';
    out << "values " << record.sized.best_values.size();
    for (double v : record.sized.best_values) out << ' ' << exact(v);
    out << '\n';
    out << "best ";
    write_point(out, record.sized.best);
    out << "hist " << record.sized.history.size() << '\n';
    for (const auto& point : record.sized.history) {
      out << "p ";
      write_point(out, point);
    }
  }
  out << "end\n";
  // Durable atomic publish (temp file + fsync + rename + directory fsync):
  // a crash at any point leaves the previous checkpoint or the complete new
  // one — and once save returns, the record contents survive power loss.
  try {
    util::atomic_write_file(path, out.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("checkpoint: ") + e.what());
  }
}

bool load_evaluator_checkpoint(const std::string& path,
                               const std::string& token,
                               core::TopologyEvaluator& evaluator) {
  INTOOA_SPAN("checkpoint.load");
  std::ifstream in(path);
  if (!in) return false;
  std::vector<core::EvalRecord> records;
  std::size_t total_simulations = 0;
  if (!parse_checkpoint(in, token, records, total_simulations)) {
    util::log_warn("ignoring unusable checkpoint " + path);
    return false;
  }
  for (auto& record : records) evaluator.restore(std::move(record));
  return true;
}

}  // namespace intooa::runtime
