#pragma once
// Process-wide execution configuration: one shared ThreadPool whose size is
// chosen once (normally from the --threads CLI option) and consumed by every
// parallel hot path — per-iteration candidate scoring in the optimizer and
// (seed x method) campaign fan-out in the bench driver.
//
// The default is 1 thread (fully serial), so library users and tests get
// today's single-threaded behavior unless they opt in. The bench binaries
// default to hardware_concurrency via BenchOptions::from_cli.

#include <cstddef>

#include "runtime/thread_pool.hpp"

namespace intooa::runtime {

/// std::thread::hardware_concurrency() clamped to at least 1.
std::size_t hardware_threads();

/// Sets the global thread count. 0 means hardware_threads(); 1 means fully
/// serial (global_pool() returns nullptr). Must not be called while parallel
/// work is in flight: the previous pool is destroyed (joining its workers)
/// before the new size takes effect.
void set_thread_count(std::size_t threads);

/// The configured thread count (>= 1).
std::size_t thread_count();

/// The shared pool, or nullptr when thread_count() == 1. The pool is created
/// lazily on first use so serial processes never spawn threads.
ThreadPool* global_pool();

}  // namespace intooa::runtime
