#include "runtime/campaign_runner.hpp"

#include <chrono>
#include <sstream>

#include "util/log.hpp"

namespace intooa::runtime {

void CampaignRunner::log_job_start(const CampaignJob& job, std::size_t total) {
  std::ostringstream out;
  out << job.name << " [" << (job.index + 1) << "/" << total << "] started";
  util::log_info(out.str());
}

void CampaignRunner::log_job_done(const CampaignJob& job, std::size_t total,
                                  double elapsed_seconds) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << job.name << " [" << (job.index + 1) << "/" << total
      << "] done in " << elapsed_seconds << "s";
  util::log_info(out.str());
}

double CampaignRunner::monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace intooa::runtime
