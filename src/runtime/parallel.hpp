#pragma once
// Deterministic data-parallel primitives over a ThreadPool.
//
// Every primitive here is a *pure fan-out*: task i reads only its own inputs
// (its index, its pre-assigned rng stream) and writes only its own output
// slot, so the combined result is a function of the inputs alone — identical
// for any thread count and any scheduling. Passing a null pool (or count
// <= 1) runs the loop inline on the calling thread, which is the
// `--threads 1` reproducibility path: it executes the exact same per-task
// computations in index order.
//
// deterministic_parallel_map is the rng-aware variant: it forks one child
// stream per task via util::Rng::split() IN SUBMISSION (INDEX) ORDER before
// any task is dispatched. The parent rng therefore advances by exactly
// `count` draws regardless of parallelism, and task i always sees the same
// child stream — the property the campaign- and pool-level parallelism of
// this codebase is built on (see docs/ALGORITHMS.md, "Parallelism &
// reproducibility").

#include <cstddef>
#include <exception>
#include <future>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace intooa::runtime {

/// Calls fn(i) for i in [0, count). Blocks until every task finished. When
/// one or more tasks throw, all tasks still run to completion and the
/// exception of the *lowest* failing index is rethrown, so failure behavior
/// does not depend on scheduling either.
///
/// Nested parallel regions run inline: when the calling thread is itself a
/// pool worker (a campaign run calling the optimizer's candidate scoring),
/// fanning out to the same pool and blocking on the futures would deadlock
/// once every worker is occupied by an outer task. Inline execution is the
/// same deterministic code path as the null-pool case, so results are
/// unchanged.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t count, Fn&& fn) {
  if (pool == nullptr || pool->size() <= 1 || count <= 1 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool->submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Maps fn over [0, count) and returns the results in index order. The
/// result type must be default-constructible (output slots are pre-sized).
template <typename Fn, typename R = std::invoke_result_t<Fn&, std::size_t>>
std::vector<R> parallel_map(ThreadPool* pool, std::size_t count, Fn&& fn) {
  std::vector<R> results(count);
  parallel_for(pool, count,
               [&results, &fn](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// Maps fn(i, rng_i) over [0, count) where rng_i is the i-th child stream
/// split from `rng` in submission order. Results are byte-identical for a
/// given incoming rng state regardless of pool size; the parent stream is
/// advanced by exactly `count` splits.
template <typename Fn,
          typename R = std::invoke_result_t<Fn&, std::size_t, util::Rng&>>
std::vector<R> deterministic_parallel_map(ThreadPool* pool, std::size_t count,
                                          util::Rng& rng, Fn&& fn) {
  std::vector<util::Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(rng.split());
  std::vector<R> results(count);
  parallel_for(pool, count, [&results, &streams, &fn](std::size_t i) {
    results[i] = fn(i, streams[i]);
  });
  return results;
}

}  // namespace intooa::runtime
