#include "runtime/executor.hpp"

#include <memory>
#include <mutex>
#include <thread>

namespace intooa::runtime {

namespace {
std::mutex g_mutex;
std::size_t g_threads = 1;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void set_thread_count(std::size_t threads) {
  const std::size_t resolved = threads == 0 ? hardware_threads() : threads;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (resolved == g_threads) return;
  g_pool.reset();  // joins the old workers before resizing
  g_threads = resolved;
}

std::size_t thread_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_threads;
}

ThreadPool* global_pool() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_threads <= 1) return nullptr;
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_threads);
  return g_pool.get();
}

}  // namespace intooa::runtime
