#pragma once
// Fixed-size worker thread pool with task futures — the execution engine of
// the intooa::runtime subsystem. Tasks are arbitrary callables; submit()
// returns a std::future through which the task's result (or any exception it
// threw) is delivered to the caller. The pool itself imposes no ordering on
// task completion; deterministic results are the job of the primitives built
// on top (runtime/parallel.hpp), which assign all order-sensitive state (rng
// streams, output slots) in submission order before any task runs.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace intooa::runtime {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The pool never grows or shrinks.
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding tasks, then joins all workers. Tasks already queued
  /// still run to completion; their futures stay valid.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool. The
  /// parallel primitives use this to run nested parallel regions inline:
  /// a worker that blocked on futures for sub-tasks queued behind the
  /// task it is running would deadlock the pool.
  static bool on_worker_thread();

  /// Enqueues `fn` and returns a future for its result. An exception thrown
  /// by `fn` is captured and rethrown from future::get() in the caller.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>>>
  std::future<R> submit(F&& fn) {
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace intooa::runtime
