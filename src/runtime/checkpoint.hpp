#pragma once
// Checkpoint/resume for optimization campaigns: serializes the complete
// TopologyEvaluator state — every evaluated topology, its sized result
// (best values, best point, per-simulation history) and the simulation
// counters — so an interrupted campaign can restore a finished run from
// disk instead of re-simulating it.
//
// Doubles are written with std::to_chars (shortest decimal that
// round-trips exactly), so a restored evaluator reproduces FoM curves,
// best-design selection and every downstream aggregate byte-for-byte.
// Files are published with util::atomic_write_file (temp file + fsync +
// rename + directory fsync): a crash at any point — including right after
// the rename — leaves either the previous complete checkpoint or the new
// complete one, never a torn or content-less file. The format is
// documented in docs/ALGORITHMS.md and docs/PERSISTENCE.md.

#include <string>

#include "core/evaluator.hpp"

namespace intooa::runtime {

/// Writes `evaluator`'s full history plus the caller's `token` (an
/// identity stamp: spec, method, protocol params, seed) to `path`.
/// Parent directories are created. Throws std::runtime_error on I/O
/// failure.
void save_evaluator_checkpoint(const std::string& path,
                               const std::string& token,
                               const core::TopologyEvaluator& evaluator);

/// Restores a checkpoint written by save_evaluator_checkpoint into
/// `evaluator`, which must be freshly constructed for the same spec and
/// sizing config. Returns false — leaving `evaluator` untouched — when the
/// file is missing, malformed/truncated, or stamped with a different
/// `token` (a stale checkpoint from other protocol parameters is never
/// silently reused).
bool load_evaluator_checkpoint(const std::string& path,
                               const std::string& token,
                               core::TopologyEvaluator& evaluator);

}  // namespace intooa::runtime
