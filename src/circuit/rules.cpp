#include "circuit/rules.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace intooa::circuit {

const std::array<Slot, kSlotCount>& all_slots() {
  static const std::array<Slot, kSlotCount> slots = {
      Slot::VinV2, Slot::VinVout, Slot::V1Vout, Slot::V1Gnd, Slot::V2Gnd};
  return slots;
}

std::string node_name(Node node) {
  switch (node) {
    case Node::Vin: return "vin";
    case Node::V1: return "v1";
    case Node::V2: return "v2";
    case Node::Vout: return "vout";
    case Node::Gnd: return "gnd";
  }
  throw std::invalid_argument("node_name: bad node");
}

std::pair<Node, Node> slot_nodes(Slot slot) {
  switch (slot) {
    case Slot::VinV2: return {Node::Vin, Node::V2};
    case Slot::VinVout: return {Node::Vin, Node::Vout};
    case Slot::V1Vout: return {Node::V1, Node::Vout};
    case Slot::V1Gnd: return {Node::V1, Node::Gnd};
    case Slot::V2Gnd: return {Node::V2, Node::Gnd};
  }
  throw std::invalid_argument("slot_nodes: bad slot");
}

std::string slot_name(Slot slot) {
  const auto [a, b] = slot_nodes(slot);
  return node_name(a) + "-" + node_name(b);
}

namespace {

const std::vector<SubcktType>& feedforward_types() {
  static const std::vector<SubcktType> types = {
      SubcktType::None,         SubcktType::GmPosFwd,
      SubcktType::GmNegFwd,     SubcktType::GmPosFwdSerR,
      SubcktType::GmNegFwdSerR, SubcktType::GmPosFwdSerC,
      SubcktType::GmNegFwdSerC,
  };
  return types;
}

const std::vector<SubcktType>& compensation_types() {
  static const std::vector<SubcktType> types = [] {
    std::vector<SubcktType> all(all_subckt_types().begin(),
                                all_subckt_types().end());
    return all;
  }();
  return types;
}

const std::vector<SubcktType>& shunt_types() {
  static const std::vector<SubcktType> types = {
      SubcktType::None, SubcktType::R, SubcktType::C, SubcktType::RCp,
      SubcktType::RCs,
  };
  return types;
}

}  // namespace

std::span<const SubcktType> allowed_types(Slot slot) {
  switch (slot) {
    case Slot::VinV2:
    case Slot::VinVout:
      return feedforward_types();
    case Slot::V1Vout:
      return compensation_types();
    case Slot::V1Gnd:
    case Slot::V2Gnd:
      return shunt_types();
  }
  throw std::invalid_argument("allowed_types: bad slot");
}

bool is_allowed(Slot slot, SubcktType type) {
  const auto types = allowed_types(slot);
  return std::find(types.begin(), types.end(), type) != types.end();
}

std::size_t allowed_index(Slot slot, SubcktType type) {
  const auto types = allowed_types(slot);
  const auto it = std::find(types.begin(), types.end(), type);
  if (it == types.end()) {
    throw std::invalid_argument("allowed_index: type " + short_name(type) +
                                " not allowed in slot " + slot_name(slot));
  }
  return static_cast<std::size_t>(it - types.begin());
}

std::size_t design_space_size() {
  std::size_t total = 1;
  for (Slot slot : all_slots()) total *= allowed_types(slot).size();
  return total;
}

}  // namespace intooa::circuit
