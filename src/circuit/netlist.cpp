#include "circuit/netlist.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace intooa::circuit {

Netlist::Netlist() {
  names_.push_back("gnd");
  index_["gnd"] = 0;
  index_["0"] = 0;
}

NetNode Netlist::node(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const NetNode id = names_.size();
  names_.push_back(name);
  index_[name] = id;
  return id;
}

std::optional<NetNode> Netlist::find_node(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Netlist::node_label(NetNode id) const {
  check_node(id);
  return names_[id];
}

void Netlist::add_resistor(std::string name, NetNode n1, NetNode n2,
                           double ohms) {
  check_node(n1);
  check_node(n2);
  if (!(ohms > 0.0) || !std::isfinite(ohms)) {
    throw std::invalid_argument("Netlist: resistor " + name +
                                " needs positive finite ohms");
  }
  resistors_.push_back({std::move(name), n1, n2, ohms});
}

void Netlist::add_capacitor(std::string name, NetNode n1, NetNode n2,
                            double farads) {
  check_node(n1);
  check_node(n2);
  if (!(farads > 0.0) || !std::isfinite(farads)) {
    throw std::invalid_argument("Netlist: capacitor " + name +
                                " needs positive finite farads");
  }
  capacitors_.push_back({std::move(name), n1, n2, farads});
}

void Netlist::add_vccs(std::string name, NetNode out_pos, NetNode out_neg,
                       NetNode ctrl_pos, NetNode ctrl_neg, double gm,
                       double bias_current) {
  check_node(out_pos);
  check_node(out_neg);
  check_node(ctrl_pos);
  check_node(ctrl_neg);
  if (!std::isfinite(gm) || gm == 0.0) {
    throw std::invalid_argument("Netlist: vccs " + name +
                                " needs nonzero finite gm");
  }
  if (bias_current < 0.0 || !std::isfinite(bias_current)) {
    throw std::invalid_argument("Netlist: vccs " + name +
                                " needs nonnegative bias current");
  }
  vccs_.push_back(
      {std::move(name), out_pos, out_neg, ctrl_pos, ctrl_neg, gm, bias_current});
}

void Netlist::add_vsource(std::string name, NetNode pos, NetNode neg,
                          double amplitude) {
  check_node(pos);
  check_node(neg);
  vsources_.push_back({std::move(name), pos, neg, amplitude});
}

void Netlist::add_vcvs(std::string name, NetNode out_pos, NetNode out_neg,
                       NetNode ctrl_pos, NetNode ctrl_neg, double gain) {
  check_node(out_pos);
  check_node(out_neg);
  check_node(ctrl_pos);
  check_node(ctrl_neg);
  if (!std::isfinite(gain)) {
    throw std::invalid_argument("Netlist: vcvs " + name +
                                " needs a finite gain");
  }
  vcvs_.push_back({std::move(name), out_pos, out_neg, ctrl_pos, ctrl_neg, gain});
}

double Netlist::static_power(double vdd) const {
  double current = 0.0;
  for (const auto& g : vccs_) current += g.bias_current;
  return vdd * current;
}

std::string Netlist::to_spice() const {
  std::ostringstream out;
  out << "* netlist (" << names_.size() << " nodes)\n";
  for (const auto& r : resistors_) {
    out << "R" << r.name << " " << names_[r.n1] << " " << names_[r.n2] << " "
        << util::fmt_si(r.ohms) << "\n";
  }
  for (const auto& c : capacitors_) {
    out << "C" << c.name << " " << names_[c.n1] << " " << names_[c.n2] << " "
        << util::fmt_si(c.farads) << "\n";
  }
  for (const auto& g : vccs_) {
    out << "G" << g.name << " " << names_[g.out_pos] << " "
        << names_[g.out_neg] << " " << names_[g.ctrl_pos] << " "
        << names_[g.ctrl_neg] << " " << util::fmt_si(g.gm) << "\n";
  }
  for (const auto& v : vsources_) {
    out << "V" << v.name << " " << names_[v.pos] << " " << names_[v.neg]
        << " AC " << util::fmt_si(v.amplitude) << "\n";
  }
  for (const auto& e : vcvs_) {
    out << "E" << e.name << " " << names_[e.out_pos] << " "
        << names_[e.out_neg] << " " << names_[e.ctrl_pos] << " "
        << names_[e.ctrl_neg] << " " << util::fmt_si(e.gain) << "\n";
  }
  return out.str();
}

void Netlist::check_node(NetNode id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("Netlist: node id out of range");
  }
}

}  // namespace intooa::circuit
