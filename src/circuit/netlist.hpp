#pragma once
// Linear small-signal netlist: the data structure consumed by the MNA AC
// solver (`intooa::sim`). Holds R / C / VCCS / independent-V elements over
// named nodes, plus the behavioral power model (transconductor bias
// currents). Both the behavior-level builder and the transistor-level
// mapper produce this representation, so one simulator serves both flows —
// exactly the role Hspice plays in the paper.

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace intooa::circuit {

/// Node index within a Netlist; ground is always index 0.
using NetNode = std::size_t;

/// Linear resistor between two nodes.
struct Resistor {
  std::string name;
  NetNode n1 = 0;
  NetNode n2 = 0;
  double ohms = 0.0;
};

/// Linear capacitor between two nodes.
struct Capacitor {
  std::string name;
  NetNode n1 = 0;
  NetNode n2 = 0;
  double farads = 0.0;
};

/// Voltage-controlled current source. Sign convention: a current of
/// gm * (V(ctrl_pos) - V(ctrl_neg)) is injected INTO out_pos and drawn out
/// of out_neg; gm may be negative (inverting transconductor).
struct Vccs {
  std::string name;
  NetNode out_pos = 0;
  NetNode out_neg = 0;
  NetNode ctrl_pos = 0;
  NetNode ctrl_neg = 0;
  double gm = 0.0;
  /// Bias current drawn from the supply by this transconductor, used by the
  /// behavioral power model (0 for power-free mathematical elements).
  double bias_current = 0.0;
};

/// Independent voltage source (AC stimulus), amplitude in volts.
struct Vsource {
  std::string name;
  NetNode pos = 0;
  NetNode neg = 0;
  double amplitude = 1.0;
};

/// Voltage-controlled voltage source (ideal):
/// V(out_pos) - V(out_neg) = gain * (V(ctrl_pos) - V(ctrl_neg)).
/// Used to close feedback loops around the op-amp (e.g. the unity-gain
/// follower configuration for transient settling analysis).
struct Vcvs {
  std::string name;
  NetNode out_pos = 0;
  NetNode out_neg = 0;
  NetNode ctrl_pos = 0;
  NetNode ctrl_neg = 0;
  double gain = 1.0;
};

/// Mutable netlist under construction. Node 0 is ground ("gnd" / "0").
class Netlist {
 public:
  Netlist();

  /// Returns the node id for `name`, creating it if new. "gnd" and "0" both
  /// map to ground.
  NetNode node(const std::string& name);

  /// Looks up an existing node id; nullopt if the name is unknown.
  std::optional<NetNode> find_node(const std::string& name) const;

  /// Name of node `id`.
  const std::string& node_label(NetNode id) const;

  /// Number of nodes including ground.
  std::size_t node_count() const { return names_.size(); }

  void add_resistor(std::string name, NetNode n1, NetNode n2, double ohms);
  void add_capacitor(std::string name, NetNode n1, NetNode n2, double farads);
  void add_vccs(std::string name, NetNode out_pos, NetNode out_neg,
                NetNode ctrl_pos, NetNode ctrl_neg, double gm,
                double bias_current);
  void add_vsource(std::string name, NetNode pos, NetNode neg,
                   double amplitude);
  void add_vcvs(std::string name, NetNode out_pos, NetNode out_neg,
                NetNode ctrl_pos, NetNode ctrl_neg, double gain);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }
  const std::vector<Vsource>& vsources() const { return vsources_; }
  const std::vector<Vcvs>& vcvs() const { return vcvs_; }

  /// Static power: supply voltage times the sum of all bias currents.
  double static_power(double vdd) const;

  /// SPICE-flavored text dump (for examples and debugging).
  std::string to_spice() const;

 private:
  void check_node(NetNode id) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, NetNode> index_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Vccs> vccs_;
  std::vector<Vsource> vsources_;
  std::vector<Vcvs> vcvs_;
};

}  // namespace intooa::circuit
