#pragma once
// Behavior-level netlist builder (Sec. II-C): turns a Topology plus a
// sizing-parameter vector into the linear small-signal netlist the AC
// simulator evaluates. Also defines the per-topology parameter schema the
// sizing BO optimizes over.
//
// Behavioral model (Fig. 1):
//   - three fixed stages gm1 (vin->v1, inverting), gm2 (v1->v2,
//     non-inverting), gm3 (v2->vout, inverting), each with parasitic output
//     resistance Ro_i = A0 / gm_i (A0 = per-stage intrinsic gain) and
//     output capacitance Co_i = gm_i / (2 pi fT) + C0;
//   - load capacitor C_L at vout;
//   - up to five variable subcircuits per the Topology;
//   - a tiny GMIN conductance at every node (same device as SPICE's GMIN)
//     so series-capacitor internal nodes never float at low frequency.
//
// Power model: every transconductor burns a bias current gm / (gm/Id) at
// the supply, with gm/Id fixed at a moderate-inversion value; static power
// is Vdd times the summed bias currents.

#include <span>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/topology.hpp"

namespace intooa::circuit {

/// One tunable sizing parameter with its search range.
struct ParamSpec {
  std::string name;   ///< e.g. "gm1" or "v1-vout.C"
  double lo = 0.0;    ///< lower bound (inclusive)
  double hi = 0.0;    ///< upper bound (inclusive)
  bool log_scale = true;  ///< search in log space (all analog sizes are)
};

/// Ordered list of a topology's tunable parameters.
struct ParamSchema {
  std::vector<ParamSpec> params;

  std::size_t size() const { return params.size(); }

  /// Index of the parameter named `name`; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// True if a parameter named `name` exists.
  bool contains(const std::string& name) const;

  /// Maps a unit-cube point u in [0,1]^d to physical values (log or linear
  /// per ParamSpec).
  std::vector<double> from_unit(std::span<const double> u) const;

  /// Inverse of from_unit (values are clamped into range first).
  std::vector<double> to_unit(std::span<const double> values) const;
};

/// Technology/model constants of the behavioral substrate.
struct BehavioralConfig {
  double vdd = 1.8;                   ///< supply voltage [V] (paper: 1.8 V)
  /// A0 = gm*Ro per fixed stage. 72 (37 dB) gives a 113 dB unloaded
  /// three-stage gain: the >=85 dB specs punish resistive loading and the
  /// >=110 dB spec (S-2) is feasible only for nearly unloaded topologies,
  /// mirroring the selectivity the paper's S-2 exhibits.
  double stage_intrinsic_gain = 72.0;
  /// Stage output-capacitance model Co = gm/(2 pi fT) + C0. The values
  /// below put the parasitic poles of a 100 uA/V stage near 60 MHz, so
  /// high GBW costs real bias current — the power/bandwidth tradeoff the
  /// FoM rewards and the GBW specs stress.
  double stage_ft_hz = 120e6;
  double stage_c0 = 150e-15;
  /// Bias efficiency of every transconductor [S/A]. 8 S/A (strong-ish
  /// inversion, as high-bandwidth stages need) makes the power
  /// constraints genuinely binding: bandwidth is bought with microamps.
  double gm_over_id = 8.0;
  double gmin = 1e-12;                ///< leak conductance at each node [S]
  double load_cap = 10e-12;           ///< C_L [F]; set from the target Spec

  // Sizing ranges.
  double gm_lo = 2e-6, gm_hi = 2e-3;  ///< transconductances [S]
  double r_lo = 1e3, r_hi = 1e8;      ///< resistors [ohm]
  double c_lo = 5e-14, c_hi = 2e-9;   ///< capacitors [F]
};

/// Builds the ordered parameter schema of `topology`: gm1..gm3 first, then
/// the parameters of each occupied slot in canonical slot order (gm before
/// R before C within a slot). Names are stable across topologies, which
/// lets the refinement flow carry over sizes of unmodified subcircuits.
ParamSchema make_schema(const Topology& topology, const BehavioralConfig& cfg);

/// How the amplifier input is driven.
enum class InputDrive {
  /// vin is driven directly by the AC/step source (open-loop analysis —
  /// the configuration of every Sec. IV experiment).
  OpenLoop,
  /// vin = V(src) - V(vout): the unity-gain follower loop used by
  /// time-domain settling analysis. (The behavioral model is single-ended,
  /// so the subtraction is realized with an ideal VCVS.)
  UnityFollower,
};

/// Builds the behavioral netlist of `topology` with parameter `values`
/// aligned to make_schema(topology, cfg). Throws std::invalid_argument on a
/// size mismatch or out-of-range values.
Netlist build_behavioral(const Topology& topology,
                         std::span<const double> values,
                         const BehavioralConfig& cfg,
                         InputDrive drive = InputDrive::OpenLoop);

}  // namespace intooa::circuit
