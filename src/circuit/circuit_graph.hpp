#pragma once
// Circuit-graph construction (Sec. III-A): the dedicated graph
// representation whose WL features drive the surrogate model. Circuit nodes
// AND subcircuits become labeled graph nodes; connections become undirected
// edges; "no connection" slots are elided entirely (the paper's third
// representational improvement over [16]).
//
// The builder is deterministic: node order is circuit nodes (vin, v1, v2,
// vout, gnd), then the three fixed stages, then occupied variable slots in
// canonical order. Equal topologies therefore produce equal graphs.

#include "circuit/topology.hpp"
#include "graph/graph.hpp"

namespace intooa::circuit {

/// Fixed-stage polarities of the behavioral three-stage amplifier
/// (inverting, non-inverting, inverting — the standard NMC arrangement).
inline constexpr Polarity kStagePolarity[3] = {Polarity::Neg, Polarity::Pos,
                                               Polarity::Neg};

/// Graph label of fixed stage `i` (0-based): "-gm" or "+gm" per
/// kStagePolarity.
std::string stage_label(std::size_t stage);

/// Builds the circuit graph of `topology`:
///   nodes: 5 circuit nodes + 3 fixed stages + one node per occupied slot,
///          labeled with node names / subcircuit short names;
///   edges: each subcircuit node connects to its two terminal circuit nodes.
/// Node count is 8..13, edge count 6..16, matching the bounds quoted in
/// Sec. III-B.
graph::Graph build_circuit_graph(const Topology& topology);

/// Graph node id of each occupied slot's subcircuit node in
/// build_circuit_graph(topology)'s node order; kInvalidNode for None slots.
inline constexpr graph::NodeId kInvalidNode = static_cast<graph::NodeId>(-1);
std::array<graph::NodeId, kSlotCount> slot_node_ids(const Topology& topology);

}  // namespace intooa::circuit
