#pragma once
// A small library of named behavior-level topologies:
//   - "NMC": the classic nested-Miller-compensated three-stage amp
//     (single Miller branch in the v1-vout slot);
//   - "C1": the feedforward-compensated amplifier of Thandri &
//     Silva-Martinez [19] (no Miller capacitors; -gm feedforward to vout and
//     an active -gm || C branch between v1 and vout), the first refinement
//     seed of Sec. IV-C;
//   - "C2": the impedance-adapting compensated amplifier of Peng et al.
//     [20] (Miller capacitor plus series-RC impedance adaptation at v2 and
//     a -gm feedforward into v2), the second refinement seed;
//   - "R1"/"R2": the refined versions reported in Fig. 7 (C1 with the
//     -gm||C branch reduced to -gm; C2 with the vin-v2 feedforward replaced
//     by a series +gm-C branch).
//
// The C1/C2 encodings are behavior-level projections of the cited
// transistor circuits into this design space, matching the slot edits the
// paper describes for Fig. 7.

#include <string>
#include <vector>

#include "circuit/topology.hpp"

namespace intooa::circuit {

/// Returns the named topology; throws std::invalid_argument for unknown
/// names. Known names: "bare", "NMC", "C1", "C2", "R1", "R2".
Topology named_topology(const std::string& name);

/// All known names, for enumeration in examples/tests.
std::vector<std::string> topology_library_names();

}  // namespace intooa::circuit
