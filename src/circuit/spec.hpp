#pragma once
// Design specifications (Table I) and the op-amp figure of merit (Eq. 6).
// A Spec turns raw simulated performance into the normalized constraint
// margins (c <= 0 means satisfied) consumed by the constrained-BO
// acquisition, and into the FoM objective.

#include <array>
#include <string>
#include <vector>

namespace intooa::circuit {

/// Simulated op-amp performance. `valid` is false when the AC analysis
/// failed structurally (singular matrix, DC gain below 0 dB, or no unity
/// crossing); the numeric fields are then meaningless.
struct Performance {
  double gain_db = 0.0;
  double gbw_hz = 0.0;
  double pm_deg = 0.0;
  double power_w = 0.0;
  bool valid = false;
  std::string failure;  ///< reason when !valid

  bool operator==(const Performance&) const = default;
};

/// One design-specification set of Table I.
struct Spec {
  std::string name;       ///< "S-1" .. "S-5"
  double gain_db_min = 0.0;
  double gbw_hz_min = 0.0;
  double pm_deg_min = 0.0;
  double power_w_max = 0.0;
  double load_cap = 0.0;  ///< C_L [F]

  /// Number of constrained metrics (Gain, GBW, PM, Power).
  static constexpr std::size_t kConstraintCount = 4;

  /// Metric names in margin order.
  static const std::array<std::string, kConstraintCount>& constraint_names();

  /// Normalized constraint margins, <= 0 iff satisfied:
  ///   [ (Gmin - G)/Gmin, log10(GBWmin/GBW), (PMmin - PM)/PMmin,
  ///     (P - Pmax)/Pmax ].
  /// An invalid Performance maps to large positive margins (+10).
  std::array<double, kConstraintCount> margins(const Performance& p) const;

  /// True when every margin is <= 0 (and the performance is valid).
  bool satisfied(const Performance& p) const;

  /// Sum of positive margins — the scalar violation used for ranking
  /// infeasible designs (0 when satisfied).
  double violation(const Performance& p) const;
};

/// Figure of merit of Eq. 6: FoM = GBW[MHz] * C_L[pF] / Power[mW].
/// Returns 0 for invalid performance.
double fom(const Performance& p, double load_cap_farads);

/// The five specification sets of Table I (supply fixed at 1.8 V).
const std::vector<Spec>& paper_specs();

/// Looks up a paper spec by name ("S-1".."S-5"); throws if unknown.
const Spec& spec_by_name(const std::string& name);

}  // namespace intooa::circuit
