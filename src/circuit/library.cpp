#include "circuit/library.hpp"

#include <stdexcept>

namespace intooa::circuit {

Topology named_topology(const std::string& name) {
  using T = SubcktType;
  // Slot order: vin-v2, vin-vout, v1-vout, v1-gnd, v2-gnd.
  if (name == "bare") {
    return Topology();
  }
  if (name == "NMC") {
    return Topology({T::None, T::None, T::C, T::None, T::None});
  }
  if (name == "C1") {
    // Thandri/Silva-Martinez NMCFF: feedforward transconductor to the
    // output, active -gm || C branch between v1 and vout, no Miller caps.
    return Topology({T::None, T::GmNegFwd, T::GmNegFwdParC, T::None, T::None});
  }
  if (name == "R1") {
    // Fig. 7(a): the parallel -gm/C branch is replaced with a bare -gm.
    return named_topology("C1").with(Slot::V1Vout, T::GmNegFwd);
  }
  if (name == "C2") {
    // Peng et al. impedance-adapting compensation: Miller capacitor in the
    // v1-vout slot, series-RC impedance adaptation shunting v2, and a -gm
    // feedforward from vin into v2.
    return Topology({T::GmNegFwd, T::None, T::C, T::None, T::RCs});
  }
  if (name == "R2") {
    // Fig. 7(b): the vin-v2 feedforward becomes a series +gm-C branch.
    return named_topology("C2").with(Slot::VinV2, T::GmPosFwdSerC);
  }
  throw std::invalid_argument("named_topology: unknown name " + name);
}

std::vector<std::string> topology_library_names() {
  return {"bare", "NMC", "C1", "C2", "R1", "R2"};
}

}  // namespace intooa::circuit
