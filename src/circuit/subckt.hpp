#pragma once
// The 25 variable-subcircuit types of the behavior-level op-amp design
// space (Sec. II-C):
//   - no connection                                   (1)
//   - a single R or C                                 (2)
//   - R and C in parallel or series                   (2)
//   - a transconductor gm, 2 polarities x 2 directions(4)
//   - gm with R or C in series or parallel,
//     2 polarities x 2 directions x 2 passives x 2    (16)
//
// "Direction" is defined relative to the slot's canonical (first, second)
// node pair: Fwd senses the first node and drives the second; Bwd senses
// the second and drives the first.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace intooa::circuit {

/// Transconductor polarity: sign of the controlled current source.
enum class Polarity : std::uint8_t { Pos, Neg };

/// Transconductor direction relative to the slot's canonical node order.
enum class Direction : std::uint8_t { Fwd, Bwd };

/// Passive element kind inside a compound subcircuit.
enum class PassiveKind : std::uint8_t { R, C };

/// How a passive combines with the transconductor output (or with the other
/// passive in RCp/RCs).
enum class Combine : std::uint8_t { Series, Parallel };

/// All 25 variable-subcircuit types.
enum class SubcktType : std::uint8_t {
  None = 0,
  R,
  C,
  RCp,  ///< R parallel C
  RCs,  ///< R series C
  GmPosFwd,
  GmNegFwd,
  GmPosBwd,
  GmNegBwd,
  GmPosFwdSerR,
  GmPosFwdSerC,
  GmPosFwdParR,
  GmPosFwdParC,
  GmNegFwdSerR,
  GmNegFwdSerC,
  GmNegFwdParR,
  GmNegFwdParC,
  GmPosBwdSerR,
  GmPosBwdSerC,
  GmPosBwdParR,
  GmPosBwdParC,
  GmNegBwdSerR,
  GmNegBwdSerC,
  GmNegBwdParR,
  GmNegBwdParC,
};

/// Number of distinct subcircuit types.
inline constexpr std::size_t kSubcktTypeCount = 25;

/// All types in enum order, for iteration.
const std::array<SubcktType, kSubcktTypeCount>& all_subckt_types();

/// Structural decomposition of a type.
struct SubcktStructure {
  bool has_gm = false;
  Polarity polarity = Polarity::Pos;   ///< meaningful iff has_gm
  Direction direction = Direction::Fwd;  ///< meaningful iff has_gm
  bool has_passive = false;
  PassiveKind passive = PassiveKind::R;  ///< meaningful iff has_passive
  Combine combine = Combine::Parallel;   ///< meaningful iff both present
  bool is_none = false;
};

/// Decomposes a type into its structural components.
SubcktStructure structure_of(SubcktType type);

/// Short canonical name, e.g. "-gmRs" (the paper's notation for the
/// series-connected -gm and R), "RCs", "+gm", "none". Bwd types get a
/// trailing "~", e.g. "-gm~".
std::string short_name(SubcktType type);

/// Label used for the subcircuit's node in the circuit graph. Identical to
/// short_name — one graph label per type, as in Fig. 3.
std::string graph_label(SubcktType type);

/// Parses a short_name back to the type; returns nullopt for unknown names.
std::optional<SubcktType> subckt_from_name(const std::string& name);

/// True when the type contributes a transconductor (consumes bias power).
bool has_gm(SubcktType type);

/// True when the type contributes a resistor.
bool has_resistor(SubcktType type);

/// True when the type contributes a capacitor.
bool has_capacitor(SubcktType type);

/// Number of tunable parameters the subcircuit adds to the sizing problem
/// (gm value and/or passive value); 0 for None.
std::size_t parameter_count(SubcktType type);

}  // namespace intooa::circuit
