#include "circuit/topology.hpp"

#include <stdexcept>

namespace intooa::circuit {

Topology::Topology() {
  types_.fill(SubcktType::None);
}

Topology::Topology(const std::array<SubcktType, kSlotCount>& types)
    : types_(types) {
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    const Slot slot = all_slots()[i];
    if (!is_allowed(slot, types_[i])) {
      throw std::invalid_argument("Topology: type " + short_name(types_[i]) +
                                  " not allowed in slot " + slot_name(slot));
    }
  }
}

SubcktType Topology::type(Slot slot) const {
  return types_[static_cast<std::size_t>(slot)];
}

Topology Topology::with(Slot slot, SubcktType type) const {
  if (!is_allowed(slot, type)) {
    throw std::invalid_argument("Topology::with: type " + short_name(type) +
                                " not allowed in slot " + slot_name(slot));
  }
  Topology copy = *this;
  copy.types_[static_cast<std::size_t>(slot)] = type;
  return copy;
}

std::uint64_t Topology::canonical_digest() const {
  // FNV-1a 64 over (slot ordinal, type ordinal) byte pairs in canonical
  // slot order. The constants are the standard FNV offset basis / prime.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    h = (h ^ static_cast<std::uint64_t>(i)) * 0x100000001b3ULL;
    h = (h ^ static_cast<std::uint64_t>(types_[i])) * 0x100000001b3ULL;
  }
  return h;
}

std::size_t Topology::index() const {
  std::size_t idx = 0;
  for (Slot slot : all_slots()) {
    idx = idx * allowed_types(slot).size() + allowed_index(slot, type(slot));
  }
  return idx;
}

Topology Topology::from_index(std::size_t index) {
  if (index >= design_space_size()) {
    throw std::out_of_range("Topology::from_index: index out of range");
  }
  std::array<SubcktType, kSlotCount> types{};
  for (std::size_t i = kSlotCount; i-- > 0;) {
    const Slot slot = all_slots()[i];
    const auto allowed = allowed_types(slot);
    types[i] = allowed[index % allowed.size()];
    index /= allowed.size();
  }
  return Topology(types);
}

Topology Topology::random(util::Rng& rng) {
  std::array<SubcktType, kSlotCount> types{};
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    const auto allowed = allowed_types(all_slots()[i]);
    types[i] = allowed[rng.index(allowed.size())];
  }
  return Topology(types);
}

Topology Topology::mutated(util::Rng& rng, double expected_mutations) const {
  if (expected_mutations <= 0.0) {
    throw std::invalid_argument("Topology::mutated: expected_mutations <= 0");
  }
  const double per_slot =
      std::min(1.0, expected_mutations / static_cast<double>(kSlotCount));

  auto mutate_slot = [&](Topology& topo, Slot slot) {
    const auto allowed = allowed_types(slot);
    // Draw a different type uniformly among the alternatives.
    const std::size_t current = allowed_index(slot, topo.type(slot));
    std::size_t pick = rng.index(allowed.size() - 1);
    if (pick >= current) ++pick;
    topo.types_[static_cast<std::size_t>(slot)] = allowed[pick];
  };

  Topology child = *this;
  bool any = false;
  for (Slot slot : all_slots()) {
    if (rng.chance(per_slot)) {
      mutate_slot(child, slot);
      any = true;
    }
  }
  if (!any) {
    mutate_slot(child, all_slots()[rng.index(kSlotCount)]);
  }
  return child;
}

std::size_t Topology::hamming_distance(const Topology& other) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    if (types_[i] != other.types_[i]) ++count;
  }
  return count;
}

std::size_t Topology::variable_parameter_count() const {
  std::size_t count = 0;
  for (SubcktType type : types_) count += parameter_count(type);
  return count;
}

std::string Topology::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    if (i) out += ", ";
    out += slot_name(all_slots()[i]) + ":" + short_name(types_[i]);
  }
  return out + "]";
}

std::vector<Topology> enumerate_design_space() {
  const std::size_t total = design_space_size();
  std::vector<Topology> all;
  all.reserve(total);
  for (std::size_t i = 0; i < total; ++i) all.push_back(Topology::from_index(i));
  return all;
}

}  // namespace intooa::circuit
