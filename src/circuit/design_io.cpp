#include "circuit/design_io.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace intooa::circuit {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Minimal tolerant scanner for the fixed document shape produced by
/// to_json: finds `"key":` and reads the value token(s) after it.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  std::string string_field(const std::string& key) const {
    std::size_t pos = find_key(key);
    pos = text_.find('"', pos);
    if (pos == std::string::npos) throw bad(key);
    std::string out;
    for (std::size_t i = pos + 1; i < text_.size(); ++i) {
      if (text_[i] == '\\' && i + 1 < text_.size()) {
        out += text_[++i];
      } else if (text_[i] == '"') {
        return out;
      } else {
        out += text_[i];
      }
    }
    throw bad(key);
  }

  double number_field(const std::string& key) const {
    std::size_t pos = skip_ws(find_key(key));
    try {
      return std::stod(text_.substr(pos));
    } catch (const std::exception&) {
      throw bad(key);
    }
  }

  bool bool_field(const std::string& key) const {
    const std::size_t pos = skip_ws(find_key(key));
    if (text_.compare(pos, 4, "true") == 0) return true;
    if (text_.compare(pos, 5, "false") == 0) return false;
    throw bad(key);
  }

  std::vector<std::string> string_array(const std::string& key) const {
    return array_items(key);
  }

  std::vector<double> number_array(const std::string& key) const {
    std::vector<double> out;
    for (const auto& item : array_items(key)) {
      try {
        out.push_back(std::stod(item));
      } catch (const std::exception&) {
        throw bad(key);
      }
    }
    return out;
  }

 private:
  std::size_t find_key(const std::string& key) const {
    const std::string needle = "\"" + key + "\"";
    const std::size_t at = text_.find(needle);
    if (at == std::string::npos) throw bad(key);
    const std::size_t colon = text_.find(':', at + needle.size());
    if (colon == std::string::npos) throw bad(key);
    return colon + 1;
  }

  std::size_t skip_ws(std::size_t pos) const {
    while (pos < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos]))) {
      ++pos;
    }
    return pos;
  }

  std::vector<std::string> array_items(const std::string& key) const {
    std::size_t pos = skip_ws(find_key(key));
    if (pos >= text_.size() || text_[pos] != '[') throw bad(key);
    const std::size_t end = text_.find(']', pos);
    if (end == std::string::npos) throw bad(key);
    std::vector<std::string> items;
    std::string current;
    bool in_string = false;
    for (std::size_t i = pos + 1; i < end; ++i) {
      const char c = text_[i];
      if (c == '"') {
        in_string = !in_string;
        continue;
      }
      if (c == ',' && !in_string) {
        items.push_back(current);
        current.clear();
        continue;
      }
      if (!in_string && std::isspace(static_cast<unsigned char>(c))) continue;
      current += c;
    }
    if (!current.empty()) items.push_back(current);
    return items;
  }

  static std::invalid_argument bad(const std::string& key) {
    return std::invalid_argument("design_from_json: bad or missing field '" +
                                 key + "'");
  }

  const std::string& text_;
};

}  // namespace

std::string to_json(const SavedDesign& design) {
  std::ostringstream out;
  out.precision(17);
  out << "{\n";
  out << "  \"name\": \"" << escape(design.name) << "\",\n";
  out << "  \"spec\": \"" << escape(design.spec_name) << "\",\n";
  out << "  \"slots\": [";
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    if (i) out << ", ";
    out << "\"" << short_name(design.topology.types()[i]) << "\"";
  }
  out << "],\n";
  out << "  \"values\": [";
  for (std::size_t i = 0; i < design.values.size(); ++i) {
    if (i) out << ", ";
    out << design.values[i];
  }
  out << "],\n";
  out << "  \"performance\": {\n";
  out << "    \"valid\": " << (design.performance.valid ? "true" : "false")
      << ",\n";
  out << "    \"gain_db\": " << design.performance.gain_db << ",\n";
  out << "    \"gbw_hz\": " << design.performance.gbw_hz << ",\n";
  out << "    \"pm_deg\": " << design.performance.pm_deg << ",\n";
  out << "    \"power_w\": " << design.performance.power_w << "\n";
  out << "  },\n";
  out << "  \"fom\": " << design.fom << "\n";
  out << "}\n";
  return out.str();
}

SavedDesign design_from_json(const std::string& json) {
  const Scanner scan(json);
  SavedDesign design;
  design.name = scan.string_field("name");
  design.spec_name = scan.string_field("spec");

  const auto slots = scan.string_array("slots");
  if (slots.size() != kSlotCount) {
    throw std::invalid_argument("design_from_json: need exactly 5 slots");
  }
  std::array<SubcktType, kSlotCount> types{};
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    const auto type = subckt_from_name(slots[i]);
    if (!type) {
      throw std::invalid_argument("design_from_json: unknown subcircuit '" +
                                  slots[i] + "'");
    }
    types[i] = *type;
  }
  design.topology = Topology(types);

  design.values = scan.number_array("values");
  design.performance.valid = scan.bool_field("valid");
  design.performance.gain_db = scan.number_field("gain_db");
  design.performance.gbw_hz = scan.number_field("gbw_hz");
  design.performance.pm_deg = scan.number_field("pm_deg");
  design.performance.power_w = scan.number_field("power_w");
  design.fom = scan.number_field("fom");
  return design;
}

void save_design(const SavedDesign& design, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_design: cannot open " + path);
  file << to_json(design);
  if (!file) throw std::runtime_error("save_design: write failed " + path);
}

SavedDesign load_design(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_design: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return design_from_json(buffer.str());
}

}  // namespace intooa::circuit
