#pragma once
// The op-amp topology design-space rules "R" of Sec. II-C: which subcircuit
// types each of the five variable slots may take. The paper (following
// [14]) fixes the per-slot counts — 7, 7, 25, 5, 5, for a total of
// 7*7*25*5*5 = 30625 topologies — and we reconstruct the sets so the
// electrical roles match:
//
//   vin-v2, vin-vout : feed-forward paths. Only transconductors make sense
//                      (a passive from the low-impedance input would load
//                      the driver, and direction is fixed away from vin):
//                      None + {+gm,-gm} x {bare, series-R, series-C} = 7.
//   v1-vout          : the main compensation branch: all 25 types.
//   v1-gnd, v2-gnd   : shunt loading/compensation: passives only:
//                      None, R, C, RCp, RCs = 5.

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "circuit/subckt.hpp"

namespace intooa::circuit {

/// The five variable-subcircuit slots, in canonical order.
enum class Slot : std::uint8_t {
  VinV2 = 0,   ///< feed-forward vin -> v2
  VinVout = 1, ///< feed-forward vin -> vout
  V1Vout = 2,  ///< compensation branch between v1 and vout
  V1Gnd = 3,   ///< shunt at v1
  V2Gnd = 4,   ///< shunt at v2
};

/// Number of variable slots.
inline constexpr std::size_t kSlotCount = 5;

/// All slots in canonical order.
const std::array<Slot, kSlotCount>& all_slots();

/// The five circuit nodes of the behavioral model.
enum class Node : std::uint8_t { Vin = 0, V1 = 1, V2 = 2, Vout = 3, Gnd = 4 };

/// Node name as used in netlists and circuit graphs ("vin", "v1", ...).
std::string node_name(Node node);

/// Canonical (first, second) terminal pair of a slot; transconductor
/// Direction::Fwd senses `first` and drives `second`.
std::pair<Node, Node> slot_nodes(Slot slot);

/// Short slot name, e.g. "vin-v2".
std::string slot_name(Slot slot);

/// The allowed subcircuit types for `slot` (always includes
/// SubcktType::None).
std::span<const SubcktType> allowed_types(Slot slot);

/// True if `type` may occupy `slot` under the design-space rules.
bool is_allowed(Slot slot, SubcktType type);

/// Index of `type` within allowed_types(slot); throws std::invalid_argument
/// if not allowed.
std::size_t allowed_index(Slot slot, SubcktType type);

/// Total number of topologies in the design space (30625).
std::size_t design_space_size();

}  // namespace intooa::circuit
