#include "circuit/subckt.hpp"

#include <stdexcept>
#include <unordered_map>

namespace intooa::circuit {

const std::array<SubcktType, kSubcktTypeCount>& all_subckt_types() {
  static const std::array<SubcktType, kSubcktTypeCount> types = {
      SubcktType::None,         SubcktType::R,
      SubcktType::C,            SubcktType::RCp,
      SubcktType::RCs,          SubcktType::GmPosFwd,
      SubcktType::GmNegFwd,     SubcktType::GmPosBwd,
      SubcktType::GmNegBwd,     SubcktType::GmPosFwdSerR,
      SubcktType::GmPosFwdSerC, SubcktType::GmPosFwdParR,
      SubcktType::GmPosFwdParC, SubcktType::GmNegFwdSerR,
      SubcktType::GmNegFwdSerC, SubcktType::GmNegFwdParR,
      SubcktType::GmNegFwdParC, SubcktType::GmPosBwdSerR,
      SubcktType::GmPosBwdSerC, SubcktType::GmPosBwdParR,
      SubcktType::GmPosBwdParC, SubcktType::GmNegBwdSerR,
      SubcktType::GmNegBwdSerC, SubcktType::GmNegBwdParR,
      SubcktType::GmNegBwdParC,
  };
  return types;
}

SubcktStructure structure_of(SubcktType type) {
  SubcktStructure s;
  switch (type) {
    case SubcktType::None:
      s.is_none = true;
      return s;
    case SubcktType::R:
      s.has_passive = true;
      s.passive = PassiveKind::R;
      return s;
    case SubcktType::C:
      s.has_passive = true;
      s.passive = PassiveKind::C;
      return s;
    case SubcktType::RCp:
      s.has_passive = true;  // both R and C; flagged via is_rc below
      s.combine = Combine::Parallel;
      return s;
    case SubcktType::RCs:
      s.has_passive = true;
      s.combine = Combine::Series;
      return s;
    default:
      break;
  }
  // All remaining types carry a transconductor.
  s.has_gm = true;
  const auto idx = static_cast<int>(type);
  const int base = static_cast<int>(SubcktType::GmPosFwd);
  const int rel = idx - base;
  if (rel < 4) {
    // Bare gm: Pos/Neg x Fwd/Bwd in enum order PosFwd, NegFwd, PosBwd,
    // NegBwd.
    s.polarity = (rel % 2 == 0) ? Polarity::Pos : Polarity::Neg;
    s.direction = (rel < 2) ? Direction::Fwd : Direction::Bwd;
    return s;
  }
  // Compound: blocks of 4 per (polarity, direction):
  //   [SerR, SerC, ParR, ParC]
  const int comp = rel - 4;
  const int block = comp / 4;  // 0 PosFwd, 1 NegFwd, 2 PosBwd, 3 NegBwd
  const int within = comp % 4;
  s.polarity = (block % 2 == 0) ? Polarity::Pos : Polarity::Neg;
  s.direction = (block < 2) ? Direction::Fwd : Direction::Bwd;
  s.has_passive = true;
  s.combine = (within < 2) ? Combine::Series : Combine::Parallel;
  s.passive = (within % 2 == 0) ? PassiveKind::R : PassiveKind::C;
  return s;
}

std::string short_name(SubcktType type) {
  switch (type) {
    case SubcktType::None: return "none";
    case SubcktType::R: return "R";
    case SubcktType::C: return "C";
    case SubcktType::RCp: return "RCp";
    case SubcktType::RCs: return "RCs";
    default: break;
  }
  const SubcktStructure s = structure_of(type);
  std::string name = (s.polarity == Polarity::Pos) ? "+gm" : "-gm";
  if (s.has_passive) {
    name += (s.passive == PassiveKind::R) ? "R" : "C";
    name += (s.combine == Combine::Series) ? "s" : "p";
  }
  if (s.direction == Direction::Bwd) name += "~";
  return name;
}

std::string graph_label(SubcktType type) { return short_name(type); }

std::optional<SubcktType> subckt_from_name(const std::string& name) {
  static const std::unordered_map<std::string, SubcktType> lookup = [] {
    std::unordered_map<std::string, SubcktType> map;
    for (SubcktType type : all_subckt_types()) map[short_name(type)] = type;
    return map;
  }();
  const auto it = lookup.find(name);
  if (it == lookup.end()) return std::nullopt;
  return it->second;
}

bool has_gm(SubcktType type) { return structure_of(type).has_gm; }

bool has_resistor(SubcktType type) {
  if (type == SubcktType::R || type == SubcktType::RCp ||
      type == SubcktType::RCs) {
    return true;
  }
  const SubcktStructure s = structure_of(type);
  return s.has_gm && s.has_passive && s.passive == PassiveKind::R;
}

bool has_capacitor(SubcktType type) {
  if (type == SubcktType::C || type == SubcktType::RCp ||
      type == SubcktType::RCs) {
    return true;
  }
  const SubcktStructure s = structure_of(type);
  return s.has_gm && s.has_passive && s.passive == PassiveKind::C;
}

std::size_t parameter_count(SubcktType type) {
  std::size_t count = 0;
  if (has_gm(type)) ++count;
  if (has_resistor(type)) ++count;
  if (has_capacitor(type)) ++count;
  return count;
}

}  // namespace intooa::circuit
