#include "circuit/behavioral.hpp"

#include "circuit/circuit_graph.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace intooa::circuit {

std::size_t ParamSchema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == name) return i;
  }
  throw std::invalid_argument("ParamSchema: unknown parameter " + name);
}

bool ParamSchema::contains(const std::string& name) const {
  for (const auto& p : params) {
    if (p.name == name) return true;
  }
  return false;
}

std::vector<double> ParamSchema::from_unit(std::span<const double> u) const {
  if (u.size() != params.size()) {
    throw std::invalid_argument("ParamSchema::from_unit: size mismatch");
  }
  std::vector<double> out(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double t = std::clamp(u[i], 0.0, 1.0);
    const auto& p = params[i];
    if (p.log_scale) {
      out[i] = std::exp(std::log(p.lo) + t * (std::log(p.hi) - std::log(p.lo)));
    } else {
      out[i] = p.lo + t * (p.hi - p.lo);
    }
  }
  return out;
}

std::vector<double> ParamSchema::to_unit(std::span<const double> values) const {
  if (values.size() != params.size()) {
    throw std::invalid_argument("ParamSchema::to_unit: size mismatch");
  }
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto& p = params[i];
    const double v = std::clamp(values[i], p.lo, p.hi);
    if (p.log_scale) {
      out[i] = (std::log(v) - std::log(p.lo)) / (std::log(p.hi) - std::log(p.lo));
    } else {
      out[i] = (v - p.lo) / (p.hi - p.lo);
    }
  }
  return out;
}

ParamSchema make_schema(const Topology& topology, const BehavioralConfig& cfg) {
  ParamSchema schema;
  for (int i = 1; i <= 3; ++i) {
    schema.params.push_back(
        {"gm" + std::to_string(i), cfg.gm_lo, cfg.gm_hi, true});
  }
  for (Slot slot : all_slots()) {
    const SubcktType type = topology.type(slot);
    if (type == SubcktType::None) continue;
    const std::string prefix = slot_name(slot) + ".";
    if (has_gm(type)) {
      schema.params.push_back({prefix + "gm", cfg.gm_lo, cfg.gm_hi, true});
    }
    if (has_resistor(type)) {
      schema.params.push_back({prefix + "R", cfg.r_lo, cfg.r_hi, true});
    }
    if (has_capacitor(type)) {
      schema.params.push_back({prefix + "C", cfg.c_lo, cfg.c_hi, true});
    }
  }
  return schema;
}

namespace {

/// Adds the output parasitics every real transconductor carries: finite
/// output resistance A0/gm and junction/self capacitance. Without these a
/// feedforward gm into a lightly-biased node could boost DC gain far past
/// A0^3 (an idealization artifact the transistor level cannot realize).
void add_gm_parasitics(Netlist& net, const std::string& name, NetNode out,
                       NetNode gnd, double gm, const BehavioralConfig& cfg) {
  net.add_resistor(name + ".ro", out, gnd, cfg.stage_intrinsic_gain / gm);
  const double co =
      gm / (2.0 * std::numbers::pi * cfg.stage_ft_hz) + cfg.stage_c0;
  net.add_capacitor(name + ".co", out, gnd, co);
}

/// Stamps one occupied variable slot into the netlist.
void build_slot(Netlist& net, Slot slot, SubcktType type,
                double gm_value, double r_value, double c_value,
                const BehavioralConfig& cfg) {
  const auto [node_a, node_b] = slot_nodes(slot);
  const NetNode a = net.node(node_name(node_a));
  const NetNode b = net.node(node_name(node_b));
  const NetNode gnd = net.node("gnd");
  const std::string base = slot_name(slot);

  // Pure passives first.
  switch (type) {
    case SubcktType::None:
      return;
    case SubcktType::R:
      net.add_resistor(base + ".R", a, b, r_value);
      return;
    case SubcktType::C:
      net.add_capacitor(base + ".C", a, b, c_value);
      return;
    case SubcktType::RCp:
      net.add_resistor(base + ".R", a, b, r_value);
      net.add_capacitor(base + ".C", a, b, c_value);
      return;
    case SubcktType::RCs: {
      const NetNode mid = net.node(base + ".m");
      net.add_resistor(base + ".R", a, mid, r_value);
      net.add_capacitor(base + ".C", mid, b, c_value);
      return;
    }
    default:
      break;
  }

  // Transconductor types.
  const SubcktStructure s = structure_of(type);
  const NetNode ctrl = (s.direction == Direction::Fwd) ? a : b;
  const NetNode out = (s.direction == Direction::Fwd) ? b : a;
  const double gm_signed =
      (s.polarity == Polarity::Pos) ? gm_value : -gm_value;
  const double bias = gm_value / cfg.gm_over_id;

  if (!s.has_passive) {
    net.add_vccs(base + ".gm", out, gnd, ctrl, gnd, gm_signed, bias);
    add_gm_parasitics(net, base, out, gnd, gm_value, cfg);
    return;
  }
  if (s.combine == Combine::Parallel) {
    net.add_vccs(base + ".gm", out, gnd, ctrl, gnd, gm_signed, bias);
    add_gm_parasitics(net, base, out, gnd, gm_value, cfg);
    if (s.passive == PassiveKind::R) {
      net.add_resistor(base + ".R", a, b, r_value);
    } else {
      net.add_capacitor(base + ".C", a, b, c_value);
    }
    return;
  }
  // Series: gm drives an internal node; the passive carries the current to
  // the output terminal.
  const NetNode mid = net.node(base + ".m");
  net.add_vccs(base + ".gm", mid, gnd, ctrl, gnd, gm_signed, bias);
  add_gm_parasitics(net, base, mid, gnd, gm_value, cfg);
  if (s.passive == PassiveKind::R) {
    net.add_resistor(base + ".Rs", mid, out, r_value);
  } else {
    net.add_capacitor(base + ".Cs", mid, out, c_value);
  }
}

}  // namespace

Netlist build_behavioral(const Topology& topology,
                         std::span<const double> values,
                         const BehavioralConfig& cfg, InputDrive drive) {
  const ParamSchema schema = make_schema(topology, cfg);
  if (values.size() != schema.size()) {
    throw std::invalid_argument(
        "build_behavioral: expected " + std::to_string(schema.size()) +
        " parameters, got " + std::to_string(values.size()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i]) || values[i] <= 0.0) {
      throw std::invalid_argument("build_behavioral: parameter " +
                                  schema.params[i].name +
                                  " must be positive and finite");
    }
  }

  Netlist net;
  const NetNode gnd = net.node("gnd");
  const NetNode vin = net.node("vin");
  const NetNode v1 = net.node("v1");
  const NetNode v2 = net.node("v2");
  const NetNode vout = net.node("vout");

  // Stimulus: direct drive for open-loop analysis, or an ideal summing
  // VCVS closing the unity-gain loop (vin = src - vout).
  if (drive == InputDrive::OpenLoop) {
    net.add_vsource("in", vin, gnd, 1.0);
  } else {
    const NetNode src = net.node("src");
    net.add_vsource("in", src, gnd, 1.0);
    net.add_vcvs("fb", vin, gnd, src, vout, 1.0);
  }

  // Fixed amplifier stages with output parasitics.
  const NetNode stage_out[3] = {v1, v2, vout};
  const NetNode stage_in[3] = {vin, v1, v2};
  for (int i = 0; i < 3; ++i) {
    const double gm = values[static_cast<std::size_t>(i)];
    const double gm_signed = (kStagePolarity[i] == Polarity::Pos) ? gm : -gm;
    const std::string name = "gm" + std::to_string(i + 1);
    net.add_vccs(name, stage_out[i], gnd, stage_in[i], gnd, gm_signed,
                 gm / cfg.gm_over_id);
    net.add_resistor("Ro" + std::to_string(i + 1), stage_out[i], gnd,
                     cfg.stage_intrinsic_gain / gm);
    const double co =
        gm / (2.0 * std::numbers::pi * cfg.stage_ft_hz) + cfg.stage_c0;
    net.add_capacitor("Co" + std::to_string(i + 1), stage_out[i], gnd, co);
  }

  // Load capacitor.
  net.add_capacitor("CL", vout, gnd, cfg.load_cap);

  // Variable subcircuits.
  for (Slot slot : all_slots()) {
    const SubcktType type = topology.type(slot);
    if (type == SubcktType::None) continue;
    const std::string prefix = slot_name(slot) + ".";
    const double gm_value =
        has_gm(type) ? values[schema.index_of(prefix + "gm")] : 0.0;
    const double r_value =
        has_resistor(type) ? values[schema.index_of(prefix + "R")] : 0.0;
    const double c_value =
        has_capacitor(type) ? values[schema.index_of(prefix + "C")] : 0.0;
    build_slot(net, slot, type, gm_value, r_value, c_value, cfg);
  }

  // GMIN at every node created so far (except ground) keeps internal
  // series-capacitor nodes from floating at DC.
  for (NetNode n = 1; n < net.node_count(); ++n) {
    net.add_resistor("gmin" + std::to_string(n), n, gnd, 1.0 / cfg.gmin);
  }
  return net;
}

}  // namespace intooa::circuit
