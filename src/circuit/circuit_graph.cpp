#include "circuit/circuit_graph.hpp"

#include <stdexcept>

namespace intooa::circuit {

std::string stage_label(std::size_t stage) {
  if (stage >= 3) throw std::out_of_range("stage_label: stage out of range");
  return kStagePolarity[stage] == Polarity::Pos ? "+gm" : "-gm";
}

graph::Graph build_circuit_graph(const Topology& topology) {
  graph::Graph g;

  // Circuit nodes, in Node enum order.
  const graph::NodeId vin = g.add_node(node_name(Node::Vin));
  const graph::NodeId v1 = g.add_node(node_name(Node::V1));
  const graph::NodeId v2 = g.add_node(node_name(Node::V2));
  const graph::NodeId vout = g.add_node(node_name(Node::Vout));
  const graph::NodeId gnd = g.add_node(node_name(Node::Gnd));

  auto circuit_node = [&](Node n) -> graph::NodeId {
    switch (n) {
      case Node::Vin: return vin;
      case Node::V1: return v1;
      case Node::V2: return v2;
      case Node::Vout: return vout;
      case Node::Gnd: return gnd;
    }
    throw std::invalid_argument("build_circuit_graph: bad node");
  };

  // Fixed amplifier stages gm1..gm3.
  const Node stage_terminals[3][2] = {{Node::Vin, Node::V1},
                                      {Node::V1, Node::V2},
                                      {Node::V2, Node::Vout}};
  for (std::size_t i = 0; i < 3; ++i) {
    const graph::NodeId stage = g.add_node(stage_label(i));
    g.add_edge(stage, circuit_node(stage_terminals[i][0]));
    g.add_edge(stage, circuit_node(stage_terminals[i][1]));
  }

  // Occupied variable slots; None slots are elided.
  for (Slot slot : all_slots()) {
    const SubcktType type = topology.type(slot);
    if (type == SubcktType::None) continue;
    const graph::NodeId sub = g.add_node(graph_label(type));
    const auto [a, b] = slot_nodes(slot);
    g.add_edge(sub, circuit_node(a));
    g.add_edge(sub, circuit_node(b));
  }
  return g;
}

std::array<graph::NodeId, kSlotCount> slot_node_ids(const Topology& topology) {
  std::array<graph::NodeId, kSlotCount> ids;
  ids.fill(kInvalidNode);
  // Node order in build_circuit_graph: 5 circuit nodes, 3 stages, then
  // occupied slots in canonical order.
  graph::NodeId next = 8;
  for (std::size_t i = 0; i < kSlotCount; ++i) {
    if (topology.type(all_slots()[i]) == SubcktType::None) continue;
    ids[i] = next++;
  }
  return ids;
}

}  // namespace intooa::circuit
