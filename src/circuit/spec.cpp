#include "circuit/spec.hpp"

#include <cmath>
#include <stdexcept>

namespace intooa::circuit {

const std::array<std::string, Spec::kConstraintCount>&
Spec::constraint_names() {
  static const std::array<std::string, kConstraintCount> names = {
      "Gain", "GBW", "PM", "Power"};
  return names;
}

std::array<double, Spec::kConstraintCount> Spec::margins(
    const Performance& p) const {
  if (!p.valid) return {10.0, 10.0, 10.0, 10.0};
  std::array<double, kConstraintCount> m{};
  m[0] = (gain_db_min - p.gain_db) / gain_db_min;
  // GBW spans decades; a log margin keeps the GP target well-scaled.
  m[1] = std::log10(gbw_hz_min / std::max(p.gbw_hz, 1e-3));
  m[2] = (pm_deg_min - p.pm_deg) / pm_deg_min;
  m[3] = (p.power_w - power_w_max) / power_w_max;
  return m;
}

bool Spec::satisfied(const Performance& p) const {
  if (!p.valid) return false;
  for (double m : margins(p)) {
    if (m > 0.0) return false;
  }
  return true;
}

double Spec::violation(const Performance& p) const {
  double acc = 0.0;
  for (double m : margins(p)) acc += std::max(0.0, m);
  return acc;
}

double fom(const Performance& p, double load_cap_farads) {
  if (!p.valid || p.power_w <= 0.0) return 0.0;
  const double gbw_mhz = p.gbw_hz / 1e6;
  const double cl_pf = load_cap_farads / 1e-12;
  const double power_mw = p.power_w / 1e-3;
  return gbw_mhz * cl_pf / power_mw;
}

const std::vector<Spec>& paper_specs() {
  static const std::vector<Spec> specs = {
      //        name   gain    gbw      pm    power     CL
      Spec{"S-1", 85.0, 0.5e6, 55.0, 750e-6, 10e-12},
      Spec{"S-2", 110.0, 0.5e6, 55.0, 750e-6, 10e-12},
      Spec{"S-3", 85.0, 5e6, 55.0, 750e-6, 10e-12},
      Spec{"S-4", 85.0, 0.5e6, 55.0, 150e-6, 10e-12},
      Spec{"S-5", 85.0, 0.5e6, 55.0, 750e-6, 10000e-12},
  };
  return specs;
}

const Spec& spec_by_name(const std::string& name) {
  for (const Spec& s : paper_specs()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("spec_by_name: unknown spec " + name);
}

}  // namespace intooa::circuit
