#pragma once
// A behavior-level op-amp topology: one subcircuit-type choice per variable
// slot, under the design-space rules. Provides the bijection to a dense
// index in [0, 30625) (used for visited-set bookkeeping and exhaustive
// enumeration), uniform sampling, and the single-slot mutation primitive of
// the candidate generation strategy (Sec. III-D).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/rules.hpp"
#include "circuit/subckt.hpp"
#include "util/rng.hpp"

namespace intooa::circuit {

/// Value-semantic topology: the 5-slot type vector.
class Topology {
 public:
  /// All-None topology (valid: the bare three-stage amp).
  Topology();

  /// From an explicit type array; throws std::invalid_argument if any slot
  /// gets a type its rule set forbids.
  explicit Topology(const std::array<SubcktType, kSlotCount>& types);

  /// Type occupying `slot`.
  SubcktType type(Slot slot) const;

  /// Returns a copy with `slot` set to `type`; throws if not allowed.
  Topology with(Slot slot, SubcktType type) const;

  /// The raw 5-slot vector in canonical slot order.
  const std::array<SubcktType, kSlotCount>& types() const { return types_; }

  /// Dense mixed-radix index in [0, design_space_size()).
  std::size_t index() const;

  /// Stable 64-bit content digest of the canonical 5-slot type vector
  /// (FNV-1a over the slot/type byte pairs). Unlike index(), the digest does
  /// not depend on the per-slot allowed-type tables, so it stays stable if
  /// the design space is extended; it addresses evaluation results in the
  /// persistent store and seeds the deterministic per-topology sizing RNG.
  std::uint64_t canonical_digest() const;

  /// Inverse of index().
  static Topology from_index(std::size_t index);

  /// Uniform sample from the whole design space.
  static Topology random(util::Rng& rng);

  /// Mutation operator of Sec. III-D: each slot is independently re-drawn
  /// (to a *different* allowed type) with probability 1/kSlotCount scaled
  /// by `expected_mutations`, so the expected number of mutated subcircuits
  /// equals `expected_mutations`. If no slot fired, one uniformly chosen
  /// slot is mutated so the result always differs from the parent.
  Topology mutated(util::Rng& rng, double expected_mutations = 1.0) const;

  /// Number of slots whose type differs from `other`.
  std::size_t hamming_distance(const Topology& other) const;

  /// Total count of tunable subcircuit parameters across the variable slots
  /// (excludes the 3 fixed-stage gm parameters).
  std::size_t variable_parameter_count() const;

  /// Human-readable one-liner, e.g.
  /// "[vin-v2:-gm, vin-vout:none, v1-vout:RCs, v1-gnd:none, v2-gnd:C]".
  std::string to_string() const;

  auto operator<=>(const Topology&) const = default;

 private:
  std::array<SubcktType, kSlotCount> types_;
};

/// Enumerates the entire design space in index order (30625 entries).
std::vector<Topology> enumerate_design_space();

}  // namespace intooa::circuit
