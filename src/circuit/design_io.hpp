#pragma once
// Design persistence: save/load a sized op-amp design (topology + sizing
// values + recorded performance) as a small JSON document. This is how a
// synthesized or refined design leaves the optimizer and re-enters later
// flows (transistor mapping, characterization, refinement) without
// re-running a campaign.

#include <string>
#include <vector>

#include "circuit/spec.hpp"
#include "circuit/topology.hpp"

namespace intooa::circuit {

/// A persistable sized design.
struct SavedDesign {
  std::string name;        ///< free-form label
  std::string spec_name;   ///< Table-I spec it was designed for ("" if none)
  Topology topology;
  std::vector<double> values;  ///< schema-ordered parameter values
  Performance performance;     ///< as recorded at save time
  double fom = 0.0;

  bool operator==(const SavedDesign&) const = default;
};

/// Serializes to a human-readable JSON document.
std::string to_json(const SavedDesign& design);

/// Parses a document produced by to_json. Throws std::invalid_argument on
/// malformed input (unknown subcircuit names, missing fields, bad
/// numbers).
SavedDesign design_from_json(const std::string& json);

/// Convenience file I/O; throws std::runtime_error on I/O failure.
void save_design(const SavedDesign& design, const std::string& path);
SavedDesign load_design(const std::string& path);

}  // namespace intooa::circuit
