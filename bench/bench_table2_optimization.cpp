// Regenerates Table II: behavior-level op-amp optimization results —
// success rate, mean final FoM of successful runs, mean number of
// simulations to reach the per-spec reference FoM (the dashed lines of
// Fig. 5), and the simulation speedup relative to the slowest method.
//
// Options: --quick | --runs N --iters N --init N --pool N --seed S
//          --cache-dir DIR | --no-cache   --spec S-3 (restrict to one spec)
//          --store FILE (persistent cross-campaign evaluation store)
//          --threads N (default: hardware concurrency; results are
//          byte-identical for any value, 1 = fully serial)

#include <algorithm>
#include <cstdio>

#include "common/campaign.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string only_spec = cli.get("spec", "");

  std::printf(
      "TABLE II: Behavior-level Op-amp Optimization Results (%zu runs)\n\n",
      options.params.runs);
  util::Table table(
      {"Specs", "Method", "Suc. Rate", "Final FoM", "# Sim.", "Sim. Speedup"});

  for (const auto& spec : circuit::paper_specs()) {
    if (!only_spec.empty() && spec.name != only_spec) continue;

    std::vector<CampaignSet> sets;
    for (Method method : all_methods()) {
      sets.push_back(
          run_or_load(spec.name, method, options.params, options.cache_dir,
                      options.store, options.remote));
    }

    const double ref = reference_fom(sets);
    std::vector<double> sims;
    for (const auto& set : sets) sims.push_back(set.mean_sims_to_reach(ref));
    const double slowest = *std::max_element(sims.begin(), sims.end());

    for (std::size_t m = 0; m < sets.size(); ++m) {
      const auto& set = sets[m];
      table.add_row({spec.name, method_name(set.method),
                     util::fmt_rate(set.successes(),
                                    static_cast<int>(set.runs.size())),
                     set.successes() ? util::fmt_fixed(set.mean_final_fom(), 2)
                                     : "-",
                     util::fmt_fixed(sims[m], 0),
                     util::fmt_speedup(slowest / std::max(sims[m], 1.0))});
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\n(Final FoM averages successful runs; '# Sim.' counts simulations to\n"
      "reach the per-spec reference FoM, with failures charged the full\n"
      "budget; speedup is relative to the slowest method per spec.)\n");
  return 0;
}
