// Regenerates Fig. 7 + Table IV: gradient-guided topology refinement of
// the two published three-stage op-amps C1 [19] and C2 [20] against S-5.
// Prints the per-design before/after performance (Table IV) and the
// Fig. 7-style description of each single-slot edit.
//
// Options: --quick | --runs/--iters/... --seed S --store FILE

#include <cstdio>

#include "common/refine_flow.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace intooa;

std::vector<std::string> perf_row(const std::string& name,
                                  const sizing::EvalPoint& point) {
  return {name,
          util::fmt_fixed(point.perf.gain_db, 2),
          util::fmt_fixed(point.perf.gbw_hz / 1e6, 2),
          util::fmt_fixed(point.perf.pm_deg, 2),
          util::fmt_fixed(point.perf.power_w / 1e-6, 2),
          util::fmt_fixed(point.fom, 0),
          point.feasible ? "yes" : "NO"};
}

void describe(const char* original, const char* refined,
              const core::RefineResult& result) {
  std::printf(
      "FIG. 7 %s -> %s: slot %s, %s replaced by %s (%zu attempt(s), %zu "
      "simulations, success=%s)\n",
      original, refined, circuit::slot_name(result.changed_slot).c_str(),
      circuit::short_name(result.old_type).c_str(),
      circuit::short_name(result.new_type).c_str(), result.attempts.size(),
      result.simulations, result.success ? "yes" : "no");
  std::printf("  critical metric: %s margin\n",
              circuit::Spec::constraint_names()[result.critical_metric].c_str());
  std::printf("  refined topology: %s\n\n", result.refined.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli);
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);

  const RefinementFlow flow =
      run_refinement_flow(options.params, options.store, options.remote);

  std::printf(
      "\nTABLE IV: Behavior-level Op-amp Performance before and after "
      "Topology Refinement (spec S-5)\n\n");
  util::Table table({"Circuit", "Gain(dB)", "GBW(MHz)", "PM(deg)",
                     "Power(uW)", "FoM", "meets S-5"});
  table.add_row(perf_row("C1", flow.c1.original_point));
  table.add_row(perf_row("R1", flow.c1.refined_point));
  table.add_row(perf_row("C2", flow.c2.original_point));
  table.add_row(perf_row("R2", flow.c2.refined_point));
  std::printf("%s\n", table.to_ascii().c_str());

  describe("C1", "R1", flow.c1);
  describe("C2", "R2", flow.c2);
  return 0;
}
