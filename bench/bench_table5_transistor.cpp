// Regenerates Table V: transistor-level validation (Sec. IV-D). The best
// behavior-level designs of FE-GA, VGAE-BO and INTO-OA for every spec are
// mapped to the transistor level via the gm/Id flow and re-simulated; the
// refined designs R1/R2 are mapped for S-5 as in the paper.
//
// Options: --quick | --runs/--iters/... --cache-dir DIR | --no-cache
//          --store FILE --spec S-3 (restrict) --skip-refined

#include <cstdio>

#include "common/campaign.hpp"
#include "common/refine_flow.hpp"
#include "sizing/evaluate.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "xtor/mapping.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec", "skip-refined"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string only_spec = cli.get("spec", "");

  const std::vector<Method> methods = {Method::FeGa, Method::VgaeBo,
                                       Method::IntoOa};

  std::printf("TABLE V: Transistor-level Op-amp Performance\n\n");
  util::Table table({"Specs", "Method/Circuit", "Gain(dB)", "GBW(MHz)",
                     "PM(deg)", "Power(uW)", "FoM"});

  for (const auto& spec : circuit::paper_specs()) {
    if (!only_spec.empty() && spec.name != only_spec) continue;
    for (Method method : methods) {
      const CampaignSet set =
          run_or_load(spec.name, method, options.params, options.cache_dir,
                      options.store, options.remote);
      const auto best = set.best_run();
      if (!best) {
        table.add_row({spec.name, method_name(method), "-", "-", "-", "-",
                       "no feasible design"});
        continue;
      }
      const RunResult& run = set.runs[*best];
      const auto topology =
          circuit::Topology::from_index(run.best_topology_index);
      intooa::sizing::EvalContext ctx{spec};
      const auto perf = xtor::evaluate_transistor(topology, run.best_values,
                                                  ctx.behavioral);
      if (!perf.valid) {
        table.add_row({spec.name, method_name(method), "-", "-", "-", "-",
                       "mapping failed: " + perf.failure});
        continue;
      }
      table.add_row({spec.name, method_name(method),
                     util::fmt_fixed(perf.gain_db, 2),
                     util::fmt_fixed(perf.gbw_hz / 1e6, 2),
                     util::fmt_fixed(perf.pm_deg, 2),
                     util::fmt_fixed(perf.power_w / 1e-6, 2),
                     util::fmt_fixed(circuit::fom(perf, spec.load_cap), 2)});
    }
  }

  // Refined designs (S-5 rows at the bottom of the paper's Table V).
  if (!cli.has("skip-refined") && (only_spec.empty() || only_spec == "S-5")) {
    const RefinementFlow flow =
        run_refinement_flow(options.params, options.store, options.remote);
    sizing::EvalContext ctx(circuit::spec_by_name("S-5"));
    for (const auto& [name, result] :
         {std::pair<const char*, const core::RefineResult*>{"R1", &flow.c1},
          std::pair<const char*, const core::RefineResult*>{"R2", &flow.c2}}) {
      if (result->refined_values.empty()) {
        table.add_row({"S-5", name, "-", "-", "-", "-", "refinement failed"});
        continue;
      }
      const auto perf = xtor::evaluate_transistor(
          result->refined, result->refined_values, ctx.behavioral);
      if (!perf.valid) {
        table.add_row({"S-5", name, "-", "-", "-", "-",
                       "mapping failed: " + perf.failure});
        continue;
      }
      table.add_row({"S-5", name, util::fmt_fixed(perf.gain_db, 2),
                     util::fmt_fixed(perf.gbw_hz / 1e6, 2),
                     util::fmt_fixed(perf.pm_deg, 2),
                     util::fmt_fixed(perf.power_w / 1e-6, 2),
                     util::fmt_fixed(circuit::fom(perf, 10e-9), 2)});
    }
  }

  std::printf("%s", table.to_ascii().c_str());
  std::printf(
      "\n(FoM typically drops versus Table III: device parasitics and bias\n"
      "overheads are now modeled — the Sec. IV-D trend.)\n");
  return 0;
}
