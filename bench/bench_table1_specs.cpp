// Regenerates Table I: the five design-specification sets. Also prints the
// derived design-space statistics quoted in Sec. II-C (type counts per
// slot, total space size) as a sanity header for the other benches.
//
// Options: --store FILE (open and report on a persistent evaluation store:
//          record count after tail recovery — a cheap integrity check)

#include <cstdio>

#include "circuit/rules.hpp"
#include "circuit/spec.hpp"
#include "common/campaign.hpp"
#include "obs/telemetry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli);
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  if (const auto store = bench::open_store_from_cli(cli)) {
    std::printf("evaluation store %s: %zu record(s)\n\n",
                store->path().c_str(), store->size());
  }

  std::printf("TABLE I: The Design Specification Sets\n");
  util::Table table(
      {"Specs", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "CL(pF)"});
  for (const auto& spec : circuit::paper_specs()) {
    table.add_row({spec.name, ">" + util::fmt(spec.gain_db_min, 3),
                   ">" + util::fmt(spec.gbw_hz_min / 1e6, 3),
                   ">" + util::fmt(spec.pm_deg_min, 3),
                   "<" + util::fmt(spec.power_w_max / 1e-6, 3),
                   util::fmt(spec.load_cap / 1e-12, 5)});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  std::printf("Design space (Sec. II-C):\n");
  for (circuit::Slot slot : circuit::all_slots()) {
    std::printf("  %-8s : %2zu types\n", circuit::slot_name(slot).c_str(),
                circuit::allowed_types(slot).size());
  }
  std::printf("  total    : %zu topologies\n", circuit::design_space_size());
  return 0;
}
