// Regenerates Fig. 6: the best op-amp found by INTO-OA for S-3 — its
// behavior-level topology (a), and the transistor-level realization (b)
// produced by the gm/Id mapping flow: sized devices, the small-signal
// netlist, and the re-simulated performance.
//
// Options: --quick | --runs N ... --cache-dir DIR | --no-cache
//          --store FILE --spec S-3 (default S-3, any spec accepted)

#include <cstdio>

#include "circuit/behavioral.hpp"
#include "circuit/circuit_graph.hpp"
#include "common/campaign.hpp"
#include "sim/metrics.hpp"
#include "sizing/evaluate.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "xtor/mapping.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string spec_name = cli.get("spec", "S-3");
  const circuit::Spec& spec = circuit::spec_by_name(spec_name);

  const CampaignSet set =
      run_or_load(spec_name, Method::IntoOa, options.params, options.cache_dir,
                  options.store, options.remote);
  const auto best = set.best_run();
  if (!best) {
    std::printf("No feasible %s design found; rerun with more iterations.\n",
                spec_name.c_str());
    return 1;
  }
  const RunResult& run = set.runs[*best];
  const auto topology = circuit::Topology::from_index(run.best_topology_index);

  std::printf("FIG. 6(a): best behavior-level op-amp for %s found by INTO-OA\n\n",
              spec_name.c_str());
  std::printf("topology: %s\n\n", topology.to_string().c_str());
  std::printf("circuit graph (Sec. III-A representation):\n%s\n",
              circuit::build_circuit_graph(topology).to_string().c_str());

  intooa::sizing::EvalContext ctx{spec};
  const auto net =
      circuit::build_behavioral(topology, run.best_values, ctx.behavioral);
  std::printf("behavior-level netlist:\n%s\n", net.to_spice().c_str());
  std::printf(
      "behavior-level performance: Gain=%.2f dB, GBW=%.2f MHz, PM=%.2f deg, "
      "Power=%.2f uW, FoM=%.2f\n\n",
      run.gain_db, run.gbw_hz / 1e6, run.pm_deg, run.power_w / 1e-6,
      run.final_fom);

  std::printf("FIG. 6(b): transistor-level realization (gm/Id mapping)\n\n");
  const auto design =
      xtor::map_to_transistor(topology, run.best_values, ctx.behavioral);
  std::printf("%s\n", design.to_string().c_str());
  const auto perf = xtor::evaluate_transistor(topology, run.best_values,
                                              ctx.behavioral);
  if (perf.valid) {
    std::printf(
        "transistor-level performance: Gain=%.2f dB, GBW=%.2f MHz, "
        "PM=%.2f deg, Power=%.2f uW, FoM=%.2f\n",
        perf.gain_db, perf.gbw_hz / 1e6, perf.pm_deg, perf.power_w / 1e-6,
        circuit::fom(perf, spec.load_cap));
  } else {
    std::printf("transistor-level evaluation failed: %s\n",
                perf.failure.c_str());
  }
  return 0;
}
