// google-benchmark microbenchmarks of the computational substrates: WL
// feature extraction and kernel evaluation, WL-GP fitting (the O(N^3) GP
// cost the paper argues dominates the WL kernel cost), complex MNA AC
// analysis, pole extraction, one full sized-circuit evaluation (the
// "simulation" unit of every experiment), and the persistent evaluation
// store (append with per-record fsync, and indexed lookup).
//
// Options: --store FILE (path for the store microbenchmarks; default
//          bench-store-micro.bin in the working directory, removed after)

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "circuit/behavioral.hpp"
#include "circuit/circuit_graph.hpp"
#include "circuit/library.hpp"
#include "gp/fit_cache.hpp"
#include "gp/wlgp.hpp"
#include "la/cholesky.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "sim/mna.hpp"
#include "sizing/evaluate.hpp"
#include "store/store.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::vector<circuit::Topology> random_topologies(std::size_t n,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<circuit::Topology> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(circuit::Topology::random(rng));
  }
  return out;
}

void BM_WlFeatures(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  graph::WlFeaturizer featurizer(6);
  const auto g =
      circuit::build_circuit_graph(random_topologies(1, 1).front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(g, h));
  }
}
BENCHMARK(BM_WlFeatures)->Arg(0)->Arg(2)->Arg(6);

void BM_WlKernelGram(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::WlFeaturizer featurizer(6);
  std::vector<graph::SparseVec> features;
  for (const auto& topo : random_topologies(n, 2)) {
    features.push_back(
        featurizer.features(circuit::build_circuit_graph(topo), 2));
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        acc += graph::dot(features[i], features[j]);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_WlKernelGram)->Arg(20)->Arg(60);

void BM_WlGpFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto featurizer = std::make_shared<graph::WlFeaturizer>(6);
  std::vector<graph::Graph> graphs;
  std::vector<double> targets;
  util::Rng rng(3);
  for (const auto& topo : random_topologies(n, 3)) {
    graphs.push_back(circuit::build_circuit_graph(topo));
    targets.push_back(rng.normal());
  }
  for (auto _ : state) {
    gp::WlGp model(featurizer, gp::WlGpConfig{});
    model.fit(graphs, targets);
    benchmark::DoNotOptimize(model.chosen_h());
  }
}
BENCHMARK(BM_WlGpFit)->Arg(20)->Arg(60);

constexpr std::size_t kMetricModels = 5;  // objective + 4 constraint margins

std::vector<std::vector<double>> random_targets(std::size_t n,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> targets(kMetricModels,
                                           std::vector<double>(n));
  for (auto& column : targets) {
    for (auto& y : column) y = rng.normal();
  }
  return targets;
}

// The pre-cache per-iteration model cost of Algorithm 1: every metric model
// refit from scratch (refeaturize, rebuild per-h Grams, refactorize the
// whole MLE grid).
void BM_WlGpFitModelsFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto featurizer = std::make_shared<graph::WlFeaturizer>(6);
  std::vector<graph::Graph> graphs;
  for (const auto& topo : random_topologies(n, 5)) {
    graphs.push_back(circuit::build_circuit_graph(topo));
  }
  const auto targets = random_targets(n, 6);
  for (auto _ : state) {
    for (std::size_t m = 0; m < kMetricModels; ++m) {
      gp::WlGp model(featurizer, gp::WlGpConfig{});
      model.fit(graphs, targets[m]);
      benchmark::DoNotOptimize(model.chosen_h());
    }
  }
}
BENCHMARK(BM_WlGpFitModelsFull)->Unit(benchmark::kMillisecond)->Arg(60)->Arg(100);

// The same six fits through the shared incremental cache in steady state:
// grid factors are already bordered up to size n, so each model only scores
// the shared factors against its own target column.
void BM_WlGpFitModelsShared(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto featurizer = std::make_shared<graph::WlFeaturizer>(6);
  gp::WlFitCache cache(featurizer, 6);
  for (const auto& topo : random_topologies(n, 5)) {
    cache.append(circuit::build_circuit_graph(topo));
  }
  const auto targets = random_targets(n, 6);
  std::vector<gp::WlGp> models;
  for (std::size_t m = 0; m < kMetricModels; ++m) {
    models.emplace_back(featurizer, gp::WlGpConfig{});
  }
  models[0].fit_shared(cache, targets[0]);  // materialize the grid factors
  for (auto _ : state) {
    for (std::size_t m = 0; m < kMetricModels; ++m) {
      models[m].fit_shared(cache, targets[m]);
      benchmark::DoNotOptimize(models[m].chosen_h());
    }
  }
}
BENCHMARK(BM_WlGpFitModelsShared)
    ->Unit(benchmark::kMillisecond)
    ->Arg(60)
    ->Arg(100);

la::MatrixD random_spd(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::MatrixD b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  la::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

void BM_CholeskyFactorize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::MatrixD a = random_spd(n, 7);
  for (auto _ : state) {
    const la::Cholesky chol(a);
    benchmark::DoNotOptimize(chol.log_det());
  }
}
BENCHMARK(BM_CholeskyFactorize)->Arg(60)->Arg(100);

// Extend an (n-1)-order factorization by one bordered row (copy + O(n^2)
// update) — the per-observation cost the fit cache pays instead of the full
// O(n^3) refactorization above.
void BM_CholeskyAppendRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::MatrixD a = random_spd(n, 7);
  la::MatrixD lead(n - 1, n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = 0; j + 1 < n; ++j) lead(i, j) = a(i, j);
  }
  const la::Cholesky base(lead);
  std::vector<double> row(n);
  for (std::size_t j = 0; j < n; ++j) row[j] = a(n - 1, j);
  for (auto _ : state) {
    la::Cholesky chol = base;
    chol.append_row(row);
    benchmark::DoNotOptimize(chol.log_det());
  }
}
BENCHMARK(BM_CholeskyAppendRow)->Arg(60)->Arg(100);

circuit::Netlist nmc_netlist() {
  circuit::BehavioralConfig cfg;
  return circuit::build_behavioral(circuit::named_topology("NMC"),
                                   std::vector<double>{1e-4, 1e-4, 1e-3, 2e-12},
                                   cfg);
}

void BM_MnaSinglePoint(benchmark::State& state) {
  const auto net = nmc_netlist();
  const sim::AcSolver solver(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(1e6));
  }
}
BENCHMARK(BM_MnaSinglePoint);

void BM_PoleExtraction(benchmark::State& state) {
  const auto net = nmc_netlist();
  const sim::AcSolver solver(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.poles());
  }
}
BENCHMARK(BM_PoleExtraction);

void BM_FullSimulation(benchmark::State& state) {
  // One "simulation" in the paper's accounting: stability check + AC
  // sweep + metric extraction for a sized behavioral design.
  sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> values = {1e-4, 1e-4, 1e-3, 2e-12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizing::evaluate_sized(topo, values, ctx));
  }
}
BENCHMARK(BM_FullSimulation);

void BM_TopologyIndexRoundTrip(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    const auto t = circuit::Topology::random(rng);
    benchmark::DoNotOptimize(circuit::Topology::from_index(t.index()));
  }
}
BENCHMARK(BM_TopologyIndexRoundTrip);

// ---- persistent evaluation store ----------------------------------------

std::string g_store_path = "bench-store-micro.bin";  // set from --store

/// Synthetic (key, record) pair shaped like a real paper-protocol
/// evaluation: 40-point sizing history plus the best design.
core::EvalKey synthetic_key(std::uint64_t i) {
  return {0x5107eULL * 0x100000001b3ULL + i, "micro " + std::to_string(i)};
}

core::EvalRecord synthetic_record(std::uint64_t i) {
  core::EvalRecord record;
  record.topology =
      circuit::Topology::from_index(i % circuit::design_space_size());
  record.sized.topology = record.topology;
  record.sized.simulations = 40;
  record.sized.best_values = {1e-4, 2e-4, 1e-3, 2e-12};
  record.sized.best.perf.valid = true;
  record.sized.best.perf.gain_db = 80.0;
  record.sized.best.perf.gbw_hz = 1e6 + static_cast<double>(i);
  record.sized.best.perf.pm_deg = 60.0;
  record.sized.best.perf.power_w = 1e-4;
  record.sized.best.fom = 400.0;
  record.sized.best.feasible = true;
  record.sized.history.assign(40, record.sized.best);
  return record;
}

// One durable append: encode + CRC + positional write + fsync (the fsync
// dominates; this is the per-fresh-evaluation persistence overhead).
void BM_StoreAppend(benchmark::State& state) {
  std::filesystem::remove(g_store_path);
  auto eval_store = store::EvalStore::open(g_store_path);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval_store->append(synthetic_key(i), synthetic_record(i)));
    ++i;
  }
  eval_store.reset();
  std::filesystem::remove(g_store_path);
}
BENCHMARK(BM_StoreAppend)->Unit(benchmark::kMicrosecond);

// One warm lookup from a store of `range(0)` records: index probe + pread
// + CRC verify + decode (what a warm campaign pays instead of 40
// simulations).
void BM_StoreLookup(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::filesystem::remove(g_store_path);
  auto eval_store = store::EvalStore::open(g_store_path);
  for (std::uint64_t i = 0; i < n; ++i) {
    eval_store->append(synthetic_key(i), synthetic_record(i));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_store->lookup(synthetic_key(i % n)));
    ++i;
  }
  eval_store.reset();
  std::filesystem::remove(g_store_path);
}
BENCHMARK(BM_StoreLookup)->Arg(100)->Arg(1000);

// ---- observability --------------------------------------------------------

// Cost of one full registry snapshot (merging all 16 per-thread shards of
// every metric) while the other benchmark threads hammer a counter and a
// histogram — the contention profile of StatsRequest against a loaded
// server. Thread 0 snapshots; the rest write.
void BM_ObsSnapshot(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Counter& counter = obs::registry().counter("bench.obs.snap_counter");
  obs::Histogram& hist =
      obs::registry().histogram("bench.obs.snap_ns", obs::Unit::Nanoseconds);
  if (state.thread_index() == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(obs::snapshot());
    }
  } else {
    std::uint64_t i = 0;
    for (auto _ : state) {
      counter.add(1);
      hist.record(i++ & 0xFFFF);
    }
  }
}
BENCHMARK(BM_ObsSnapshot)
    ->Unit(benchmark::kMicrosecond)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared telemetry flags (--trace,
// --metrics, --log-level) work here too. The "benchmark_*" wildcard lets
// google-benchmark's --benchmark_* passthrough flags coexist with ours
// (benchmark::Initialize leaves unknown flags in place), while anything
// else still fails loudly.
int main(int argc, char** argv) {
  const intooa::util::Cli cli(argc, argv);
  // --remote/--remote-inflight are accepted for command-line uniformity
  // with the campaign benches (sweep scripts pass one flag set to every
  // bench); the substrate benches never evaluate topologies, so they are
  // ignored here.
  cli.reject_unknown({"store", "remote", "remote-inflight", "trace",
                      "metrics", "log-level", "benchmark_*"});
  intooa::obs::BenchTelemetry telemetry(intooa::obs::TelemetryOptions::from_cli(
      cli, intooa::util::LogLevel::Warn));
  g_store_path = cli.get("store", g_store_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
