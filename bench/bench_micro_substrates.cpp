// google-benchmark microbenchmarks of the computational substrates: WL
// feature extraction and kernel evaluation, WL-GP fitting (the O(N^3) GP
// cost the paper argues dominates the WL kernel cost), complex MNA AC
// analysis, pole extraction, and one full sized-circuit evaluation (the
// "simulation" unit of every experiment).

#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/behavioral.hpp"
#include "circuit/circuit_graph.hpp"
#include "circuit/library.hpp"
#include "gp/wlgp.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "sim/mna.hpp"
#include "sizing/evaluate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace intooa;

std::vector<circuit::Topology> random_topologies(std::size_t n,
                                                 std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<circuit::Topology> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(circuit::Topology::random(rng));
  }
  return out;
}

void BM_WlFeatures(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  graph::WlFeaturizer featurizer(6);
  const auto g =
      circuit::build_circuit_graph(random_topologies(1, 1).front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.features(g, h));
  }
}
BENCHMARK(BM_WlFeatures)->Arg(0)->Arg(2)->Arg(6);

void BM_WlKernelGram(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  graph::WlFeaturizer featurizer(6);
  std::vector<graph::SparseVec> features;
  for (const auto& topo : random_topologies(n, 2)) {
    features.push_back(
        featurizer.features(circuit::build_circuit_graph(topo), 2));
  }
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        acc += graph::dot(features[i], features[j]);
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_WlKernelGram)->Arg(20)->Arg(60);

void BM_WlGpFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto featurizer = std::make_shared<graph::WlFeaturizer>(6);
  std::vector<graph::Graph> graphs;
  std::vector<double> targets;
  util::Rng rng(3);
  for (const auto& topo : random_topologies(n, 3)) {
    graphs.push_back(circuit::build_circuit_graph(topo));
    targets.push_back(rng.normal());
  }
  for (auto _ : state) {
    gp::WlGp model(featurizer, gp::WlGpConfig{});
    model.fit(graphs, targets);
    benchmark::DoNotOptimize(model.chosen_h());
  }
}
BENCHMARK(BM_WlGpFit)->Arg(20)->Arg(60);

circuit::Netlist nmc_netlist() {
  circuit::BehavioralConfig cfg;
  return circuit::build_behavioral(circuit::named_topology("NMC"),
                                   std::vector<double>{1e-4, 1e-4, 1e-3, 2e-12},
                                   cfg);
}

void BM_MnaSinglePoint(benchmark::State& state) {
  const auto net = nmc_netlist();
  const sim::AcSolver solver(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(1e6));
  }
}
BENCHMARK(BM_MnaSinglePoint);

void BM_PoleExtraction(benchmark::State& state) {
  const auto net = nmc_netlist();
  const sim::AcSolver solver(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.poles());
  }
}
BENCHMARK(BM_PoleExtraction);

void BM_FullSimulation(benchmark::State& state) {
  // One "simulation" in the paper's accounting: stability check + AC
  // sweep + metric extraction for a sized behavioral design.
  sizing::EvalContext ctx(circuit::spec_by_name("S-1"));
  const auto topo = circuit::named_topology("NMC");
  const std::vector<double> values = {1e-4, 1e-4, 1e-3, 2e-12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizing::evaluate_sized(topo, values, ctx));
  }
}
BENCHMARK(BM_FullSimulation);

void BM_TopologyIndexRoundTrip(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) {
    const auto t = circuit::Topology::random(rng);
    benchmark::DoNotOptimize(circuit::Topology::from_index(t.index()));
  }
}
BENCHMARK(BM_TopologyIndexRoundTrip);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the shared telemetry flags (--trace,
// --metrics, --log-level) work here too. util::Cli ignores google-benchmark's
// --benchmark_* flags and benchmark::Initialize leaves ours in place, so the
// two parsers coexist (unrecognized-argument reporting is skipped).
int main(int argc, char** argv) {
  const intooa::util::Cli cli(argc, argv);
  intooa::obs::BenchTelemetry telemetry(intooa::obs::TelemetryOptions::from_cli(
      cli, intooa::util::LogLevel::Warn));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
