// Ablation (DESIGN.md): sensitivity of INTO-OA to the candidate-generation
// knobs — pool size and expected mutations per child — extending the
// paper's INTO-OA-r / INTO-OA-m comparison (which varies only the
// mutation fraction). Reports success rate, mean final FoM and mean
// simulations-to-success on one spec.
//
// Options: --spec S-1 (default) --runs N (default 3) --iters N --seed S
//          --store FILE (persistent cross-campaign evaluation store)

#include <cstdio>

#include "common/campaign.hpp"
#include "common/drain.hpp"
#include "core/optimizer.hpp"
#include "obs/telemetry.hpp"
#include "svc/remote_backend.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  install_drain_handler();
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const std::string spec_name = cli.get("spec", "S-1");
  const auto runs = static_cast<std::size_t>(cli.get_int("runs", 3));
  const auto iters = static_cast<std::size_t>(cli.get_int("iters", 30));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  const circuit::Spec& spec = circuit::spec_by_name(spec_name);
  const auto eval_store = open_store_from_cli(cli);
  const auto eval_pool = open_pool_from_cli(cli);
  sizing::SizingConfig sizing_config;  // paper protocol 10+30

  std::printf(
      "ABLATION: candidate generation (spec %s, %zu runs x %zu iterations)\n\n",
      spec_name.c_str(), runs, iters);
  util::Table table({"pool", "E[mutations]", "mutation frac", "Suc. Rate",
                     "Final FoM", "mean sims to 1st feasible"});

  const std::size_t pools[] = {50, 200};
  const double mutation_counts[] = {0.5, 1.0, 2.0};
  const double fractions[] = {0.5};

  for (std::size_t pool : pools) {
    for (double expected : mutation_counts) {
      for (double fraction : fractions) {
        int successes = 0;
        std::vector<double> foms;
        std::vector<double> sims_to_feasible;
        for (std::size_t r = 0; r < runs; ++r) {
          exit_if_draining();
          core::TopologyEvaluator evaluator(sizing::EvalContext(spec),
                                            sizing_config);
          store::attach(evaluator, eval_store);
          if (eval_pool) svc::attach(evaluator, eval_pool);
          core::OptimizerConfig config;
          config.iterations = iters;
          config.candidates.pool_size = pool;
          config.candidates.mutation_fraction = fraction;
          config.candidates.expected_mutations = expected;
          core::IntoOaOptimizer optimizer(config);
          util::Rng rng(seed + 977 * r + pool + static_cast<std::uint64_t>(10 * expected));
          const auto outcome = optimizer.run(evaluator, rng);
          if (outcome.success) {
            ++successes;
            foms.push_back(outcome.best_point.fom);
          }
          const auto curve = evaluator.fom_curve();
          double first = static_cast<double>(curve.size());
          for (std::size_t i = 0; i < curve.size(); ++i) {
            if (curve[i] > 0.0) {
              first = static_cast<double>(i + 1);
              break;
            }
          }
          sims_to_feasible.push_back(first);
        }
        table.add_row({std::to_string(pool), util::fmt(expected, 2),
                       util::fmt(fraction, 2),
                       util::fmt_rate(successes, static_cast<int>(runs)),
                       foms.empty() ? "-" : util::fmt_fixed(util::mean(foms), 2),
                       util::fmt_fixed(util::mean(sims_to_feasible), 0)});
      }
    }
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
