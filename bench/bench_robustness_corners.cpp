// Extension bench (DESIGN.md): variation robustness of the campaign
// winners. The best INTO-OA design for each spec is re-evaluated across
// the standard process-corner set with its sizes frozen; a trustworthy
// topology should hold its spec at every corner (or degrade gracefully).
//
// Options: --quick | --runs/--iters/... --cache-dir DIR | --no-cache
//          --store FILE --spec S-3 (restrict)

#include <cstdio>

#include "common/campaign.hpp"
#include "sizing/corners.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string only_spec = cli.get("spec", "");

  std::printf(
      "ROBUSTNESS: best INTO-OA designs across process corners "
      "(+-20%% A0/fT/C0, +-10%% gm/Id)\n\n");
  util::Table table({"Spec", "corner", "Gain(dB)", "GBW(MHz)", "PM(deg)",
                     "Power(uW)", "FoM", "meets spec"});

  for (const auto& spec : circuit::paper_specs()) {
    if (!only_spec.empty() && spec.name != only_spec) continue;
    const CampaignSet set =
        run_or_load(spec.name, Method::IntoOa, options.params,
                    options.cache_dir, options.store, options.remote);
    const auto best = set.best_run();
    if (!best) {
      table.add_row({spec.name, "-", "-", "-", "-", "-", "-",
                     "no feasible design"});
      continue;
    }
    const RunResult& run = set.runs[*best];
    const auto topology = circuit::Topology::from_index(run.best_topology_index);
    const sizing::EvalContext ctx{spec};
    const auto sweep =
        sizing::evaluate_corners(topology, run.best_values, ctx);
    for (const auto& r : sweep.results) {
      const auto& p = r.point;
      table.add_row({spec.name, r.corner.name,
                     p.perf.valid ? util::fmt_fixed(p.perf.gain_db, 2) : "-",
                     p.perf.valid ? util::fmt_fixed(p.perf.gbw_hz / 1e6, 2)
                                  : "-",
                     p.perf.valid ? util::fmt_fixed(p.perf.pm_deg, 2) : "-",
                     util::fmt_fixed(p.perf.power_w / 1e-6, 2),
                     util::fmt_fixed(p.fom, 1),
                     p.feasible ? "yes" : "NO"});
    }
    table.add_row({spec.name, "=> all corners",
                   "", "", "", "",
                   "min " + util::fmt_fixed(sweep.min_fom, 1),
                   sweep.all_feasible ? "ROBUST" : "fails some corner"});
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
