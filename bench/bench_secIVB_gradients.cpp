// Regenerates the Sec. IV-B experiment: identification of critical
// structures via WL-GP gradients, validated against remove-and-resimulate
// sensitivity analysis. An INTO-OA campaign on S-4 trains the per-metric
// WL-GPs; for the best design, each occupied variable subcircuit's
// gradient (for GBW and PM) is compared with the performance change when
// that subcircuit is removed.
//
// Options: --quick | --runs/--iters/... --spec S-4 (default) --seed S
//          --store FILE (persistent cross-campaign evaluation store)

#include <cmath>
#include <cstdio>

#include "circuit/circuit_graph.hpp"
#include "common/campaign.hpp"
#include "core/interpret.hpp"
#include "core/optimizer.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "svc/remote_backend.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string spec_name = cli.get("spec", "S-4");
  const circuit::Spec& spec = circuit::spec_by_name(spec_name);

  // Train models with one INTO-OA campaign (models are in-memory state, so
  // this bench runs its campaign inline rather than using the disk cache).
  sizing::EvalContext ctx(spec);
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = options.params.sizing_init;
  sizing_config.iterations = options.params.sizing_iterations;
  core::TopologyEvaluator evaluator(ctx, sizing_config);
  store::attach(evaluator, options.store);
  if (options.remote) svc::attach(evaluator, options.remote);
  core::OptimizerConfig opt_config;
  opt_config.init_topologies = options.params.init_topologies;
  opt_config.iterations = options.params.iterations;
  opt_config.candidates.pool_size = options.params.pool;
  core::IntoOaOptimizer optimizer(opt_config);
  util::Rng rng(options.params.seed ^ 0x9B0ULL);
  const auto outcome = optimizer.run(evaluator, rng);
  if (!outcome.best_index) {
    std::printf("campaign produced no design; rerun with more iterations\n");
    return 1;
  }

  const circuit::Topology best = outcome.best_topology;
  std::printf("SEC. IV-B: critical-structure identification for the best %s design\n\n",
              spec_name.c_str());
  std::printf("best topology: %s\n", best.to_string().c_str());
  std::printf("best performance: Gain=%.2f dB, GBW=%.3f MHz, PM=%.2f deg, Power=%.2f uW\n\n",
              outcome.best_point.perf.gain_db,
              outcome.best_point.perf.gbw_hz / 1e6,
              outcome.best_point.perf.pm_deg,
              outcome.best_point.perf.power_w / 1e-6);

  // Constraint-model indices: 1 = GBW margin, 2 = PM margin. Margins are
  // "lower is better", so the gradient w.r.t. the *metric* flips the sign.
  const auto& gbw_model = optimizer.constraint_model(1);
  const auto& pm_model = optimizer.constraint_model(2);

  util::Table table({"subcircuit (slot)", "structure", "grad GBW", "grad PM",
                     "removal dGBW (MHz)", "removal dPM (deg)", "signs agree"});

  const sizing::EvalPoint base_point =
      sizing::evaluate_sized(best, outcome.best_values, ctx);
  const auto base_schema = circuit::make_schema(best, ctx.behavioral);

  for (circuit::Slot slot : circuit::all_slots()) {
    if (best.type(slot) == circuit::SubcktType::None) continue;
    const double g_gbw = -core::slot_gradient(gbw_model, best, slot, 1);
    const double g_pm = -core::slot_gradient(pm_model, best, slot, 1);

    // Sensitivity analysis: remove the structure, keep all other sizes.
    const circuit::Topology removed =
        best.with(slot, circuit::SubcktType::None);
    const auto removed_schema = circuit::make_schema(removed, ctx.behavioral);
    std::vector<double> removed_values;
    removed_values.reserve(removed_schema.size());
    for (const auto& param : removed_schema.params) {
      removed_values.push_back(
          outcome.best_values[base_schema.index_of(param.name)]);
    }
    const sizing::EvalPoint removed_point =
        sizing::evaluate_sized(removed, removed_values, ctx);

    std::string d_gbw = "n/a", d_pm = "n/a", agree = "n/a";
    if (removed_point.perf.valid && base_point.perf.valid) {
      const double delta_gbw =
          (removed_point.perf.gbw_hz - base_point.perf.gbw_hz) / 1e6;
      const double delta_pm = removed_point.perf.pm_deg - base_point.perf.pm_deg;
      d_gbw = util::fmt_fixed(delta_gbw, 2);
      d_pm = util::fmt_fixed(delta_pm, 2);
      // A structure with positive metric gradient helps the metric, so
      // removing it should reduce the metric (opposite signs).
      const bool gbw_ok = delta_gbw * g_gbw <= 0.0;
      const bool pm_ok = delta_pm * g_pm <= 0.0;
      agree = std::string(gbw_ok ? "GBW:yes" : "GBW:no") + " " +
              (pm_ok ? "PM:yes" : "PM:no");
    } else if (!removed_point.perf.valid) {
      agree = "removal breaks amp (" + removed_point.perf.failure + ")";
    }

    const std::string structure =
        circuit::short_name(best.type(slot)) + " (" +
        circuit::slot_name(slot) + ")";
    table.add_row({structure, circuit::graph_label(best.type(slot)),
                   util::fmt(g_gbw, 3), util::fmt(g_pm, 3), d_gbw, d_pm,
                   agree});
  }
  std::printf("%s\n", table.to_ascii().c_str());

  std::printf("Strongest structures for each metric (|gradient|, depth <= 1):\n");
  for (const auto& [name, model] :
       {std::pair<const char*, const gp::WlGp*>{"GBW", &gbw_model},
        std::pair<const char*, const gp::WlGp*>{"PM", &pm_model}}) {
    std::printf("  %s:\n", name);
    for (const auto& s : core::top_structures(*model, 5, 1)) {
      std::printf("    %-28s grad(margin)=%+.4f\n", s.structure.c_str(),
                  s.gradient);
    }
  }
  return 0;
}
