// Regenerates Table III: the performance of the best behavior-level
// op-amps (best successful run per method and spec) — Gain, GBW, PM,
// Power and FoM — plus the winning topology strings.
//
// Options: --quick | --runs N --iters N --init N --pool N --seed S
//          --cache-dir DIR | --no-cache   --spec S-3 (restrict to one spec)
//          --store FILE (persistent cross-campaign evaluation store)

#include <cstdio>

#include "common/campaign.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string only_spec = cli.get("spec", "");

  // The paper's Table III compares FE-GA, VGAE-BO and INTO-OA.
  const std::vector<Method> methods = {Method::FeGa, Method::VgaeBo,
                                       Method::IntoOa};

  std::printf("TABLE III: Behavior-level Op-amp Performance (best of %zu runs)\n\n",
              options.params.runs);
  util::Table table({"Specs", "Method", "Gain(dB)", "GBW(MHz)", "PM(deg)",
                     "Power(uW)", "FoM"});
  std::vector<std::pair<std::string, std::string>> winners;

  for (const auto& spec : circuit::paper_specs()) {
    if (!only_spec.empty() && spec.name != only_spec) continue;
    for (Method method : methods) {
      const CampaignSet set =
          run_or_load(spec.name, method, options.params, options.cache_dir,
                      options.store, options.remote);
      const auto best = set.best_run();
      if (!best) {
        table.add_row({spec.name, method_name(method), "-", "-", "-", "-",
                       "no feasible design"});
        continue;
      }
      const RunResult& run = set.runs[*best];
      table.add_row({spec.name, method_name(method),
                     util::fmt_fixed(run.gain_db, 2),
                     util::fmt_fixed(run.gbw_hz / 1e6, 2),
                     util::fmt_fixed(run.pm_deg, 2),
                     util::fmt_fixed(run.power_w / 1e-6, 2),
                     util::fmt_fixed(run.final_fom, 2)});
      if (method == Method::IntoOa) {
        winners.emplace_back(spec.name, run.best_topology);
      }
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());

  std::printf("Best INTO-OA topologies:\n");
  for (const auto& [spec, topo] : winners) {
    std::printf("  %s: %s\n", spec.c_str(), topo.c_str());
  }
  return 0;
}
