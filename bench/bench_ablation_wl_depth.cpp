// Ablation (DESIGN.md): WL iteration depth h. The paper fixes h by
// maximum-likelihood estimation inside the WL-GP; this bench compares
// fixed depths h = 0..3 against the MLE-selected depth on one spec —
// quantifying how much the neighborhood-aggregation features (h >= 1)
// matter beyond bag-of-subcircuits counting (h = 0).
//
// Options: --spec S-1 (default) --runs N (default 3) --iters N --seed S
//          --store FILE (persistent cross-campaign evaluation store)

#include <cstdio>

#include "common/campaign.hpp"
#include "common/drain.hpp"
#include "core/optimizer.hpp"
#include "obs/telemetry.hpp"
#include "svc/remote_backend.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  install_drain_handler();
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const std::string spec_name = cli.get("spec", "S-1");
  const auto runs = static_cast<std::size_t>(cli.get_int("runs", 3));
  const auto iters = static_cast<std::size_t>(cli.get_int("iters", 30));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  const circuit::Spec& spec = circuit::spec_by_name(spec_name);
  const auto eval_store = open_store_from_cli(cli);
  const auto eval_pool = open_pool_from_cli(cli);
  sizing::SizingConfig sizing_config;

  std::printf("ABLATION: WL kernel depth h (spec %s, %zu runs x %zu iterations)\n\n",
              spec_name.c_str(), runs, iters);
  util::Table table({"h", "Suc. Rate", "Final FoM", "chosen h (objective GP)"});

  struct Variant {
    std::string label;
    bool fit_h;
    int fixed_h;
  };
  const Variant variants[] = {
      {"0 (bag of subcircuits)", false, 0}, {"1", false, 1}, {"2", false, 2},
      {"3", false, 3},                      {"MLE (paper)", true, 0},
  };

  for (const auto& variant : variants) {
    int successes = 0;
    std::vector<double> foms;
    std::string chosen = "-";
    for (std::size_t r = 0; r < runs; ++r) {
      exit_if_draining();
      core::TopologyEvaluator evaluator(sizing::EvalContext(spec),
                                        sizing_config);
      store::attach(evaluator, eval_store);
      if (eval_pool) svc::attach(evaluator, eval_pool);
      core::OptimizerConfig config;
      config.iterations = iters;
      config.wlgp.fit_h = variant.fit_h;
      config.wlgp.fixed_h = variant.fixed_h;
      core::IntoOaOptimizer optimizer(config);
      util::Rng rng(seed + 31 * r + static_cast<std::uint64_t>(variant.fixed_h));
      const auto outcome = optimizer.run(evaluator, rng);
      if (outcome.success) {
        ++successes;
        foms.push_back(outcome.best_point.fom);
      }
      chosen = std::to_string(optimizer.objective_model().chosen_h());
    }
    table.add_row({variant.label,
                   util::fmt_rate(successes, static_cast<int>(runs)),
                   foms.empty() ? "-" : util::fmt_fixed(util::mean(foms), 2),
                   chosen});
  }
  std::printf("%s", table.to_ascii().c_str());
  return 0;
}
