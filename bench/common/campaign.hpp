#pragma once
// Shim: the campaign driver moved to src/campaign (so the scheduler daemon
// can execute campaign units without linking bench code). The bench
// binaries keep their historical intooa::bench spelling via the
// using-directive; new code should include "campaign/campaign.hpp".

#include "campaign/campaign.hpp"

namespace intooa::bench {
using namespace ::intooa::campaign;  // NOLINT(google-build-using-namespace)
}  // namespace intooa::bench
