#pragma once
// Shared Sec. IV-C refinement flow used by the Table IV and Table V
// benches: train WL-GP models with one INTO-OA campaign on S-5, produce
// trusted sizings for the library designs C1 [19] and C2 [20], and refine
// each with the gradient-guided single-slot procedure.

#include "common/campaign.hpp"
#include "core/refine.hpp"

namespace intooa::bench {

/// Everything the refinement benches report.
struct RefinementFlow {
  sizing::SizedResult c1_trusted;  ///< trusted sizing of C1
  sizing::SizedResult c2_trusted;  ///< trusted sizing of C2
  core::RefineResult c1;           ///< C1 -> R1
  core::RefineResult c2;           ///< C2 -> R2
};

/// Runs the full flow for spec "S-5" with the given campaign protocol
/// (one model-training campaign run; refinement budget 40 simulations per
/// attempt as in the paper). A non-null `store` serves the model-training
/// campaign's topology evaluations from / persists them to the shared
/// evaluation store; a non-null `remote` additionally shards store misses
/// across the --remote service endpoints.
RefinementFlow run_refinement_flow(
    const CampaignParams& params,
    std::shared_ptr<store::EvalStore> store = nullptr,
    std::shared_ptr<svc::ClientPool> remote = nullptr);

}  // namespace intooa::bench
