#include "common/campaign.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "baselines/fega.hpp"
#include "baselines/vgae_bo.hpp"
#include "core/optimizer.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace intooa::bench {

const std::vector<Method>& all_methods() {
  static const std::vector<Method> methods = {
      Method::FeGa, Method::VgaeBo, Method::IntoOaR, Method::IntoOaM,
      Method::IntoOa};
  return methods;
}

std::string method_name(Method method) {
  switch (method) {
    case Method::FeGa: return "FE-GA";
    case Method::VgaeBo: return "VGAE-BO";
    case Method::IntoOaR: return "INTO-OA-r";
    case Method::IntoOaM: return "INTO-OA-m";
    case Method::IntoOa: return "INTO-OA";
  }
  return "?";
}

std::string CampaignParams::cache_token() const {
  std::ostringstream out;
  out << "r" << runs << "_i" << init_topologies << "x" << iterations << "_p"
      << pool << "_s" << sizing_init << "x" << sizing_iterations << "_seed"
      << seed;
  return out.str();
}

int CampaignSet::successes() const {
  int count = 0;
  for (const auto& run : runs) count += run.success;
  return count;
}

double CampaignSet::mean_final_fom() const {
  std::vector<double> foms;
  for (const auto& run : runs) {
    if (run.success) foms.push_back(run.final_fom);
  }
  return foms.empty() ? 0.0 : util::mean(foms);
}

std::vector<double> CampaignSet::mean_curve() const {
  std::vector<double> mean(params.budget(), 0.0);
  if (runs.empty()) return mean;
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < mean.size() && i < run.curve.size(); ++i) {
      mean[i] += run.curve[i];
    }
  }
  for (auto& v : mean) v /= static_cast<double>(runs.size());
  return mean;
}

double CampaignSet::mean_sims_to_reach(double fom) const {
  if (runs.empty()) return static_cast<double>(params.budget());
  double total = 0.0;
  for (const auto& run : runs) {
    std::size_t sims = params.budget();
    for (std::size_t i = 0; i < run.curve.size(); ++i) {
      if (run.curve[i] >= fom) {
        sims = i + 1;
        break;
      }
    }
    total += static_cast<double>(sims);
  }
  return total / static_cast<double>(runs.size());
}

std::optional<std::size_t> CampaignSet::best_run() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].success) continue;
    if (!best || runs[i].final_fom > runs[*best].final_fom) best = i;
  }
  return best;
}

namespace {

std::string cache_path(const std::string& cache_dir, const std::string& spec,
                       Method method, const CampaignParams& params) {
  return cache_dir + "/campaign_" + spec + "_" + method_name(method) + "_" +
         params.cache_token() + ".csv";
}

void save_cache(const std::string& path, const CampaignSet& set) {
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream out(path);
  if (!out) {
    util::log_warn("cannot write campaign cache " + path);
    return;
  }
  out.precision(12);
  for (const auto& run : set.runs) {
    out << "run," << run.success << "," << run.final_fom << ","
        << run.best_topology_index << "," << run.gain_db << "," << run.gbw_hz
        << "," << run.pm_deg << "," << run.power_w << ",\"" << run.best_topology
        << "\"\n";
    out << "values";
    for (double v : run.best_values) out << "," << v;
    out << "\ncurve";
    for (double v : run.curve) out << "," << v;
    out << "\n";
  }
}

std::optional<CampaignSet> load_cache(const std::string& path,
                                      const std::string& spec, Method method,
                                      const CampaignParams& params) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CampaignSet set;
  set.spec = spec;
  set.method = method;
  set.params = params;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("run,", 0) != 0) return std::nullopt;  // corrupt
    RunResult run;
    {
      std::istringstream ss(line.substr(4));
      std::string field;
      std::getline(ss, field, ',');
      run.success = field == "1";
      std::getline(ss, field, ',');
      run.final_fom = std::stod(field);
      std::getline(ss, field, ',');
      run.best_topology_index = static_cast<std::size_t>(std::stoull(field));
      std::getline(ss, field, ',');
      run.gain_db = std::stod(field);
      std::getline(ss, field, ',');
      run.gbw_hz = std::stod(field);
      std::getline(ss, field, ',');
      run.pm_deg = std::stod(field);
      std::getline(ss, field, ',');
      run.power_w = std::stod(field);
      std::getline(ss, field);
      if (field.size() >= 2 && field.front() == '"' && field.back() == '"') {
        field = field.substr(1, field.size() - 2);
      }
      run.best_topology = field;
    }
    if (!std::getline(in, line) || line.rfind("values", 0) != 0) {
      return std::nullopt;
    }
    {
      std::istringstream ss(line.substr(6));
      std::string field;
      while (std::getline(ss, field, ',')) {
        if (!field.empty()) run.best_values.push_back(std::stod(field));
      }
    }
    if (!std::getline(in, line) || line.rfind("curve", 0) != 0) {
      return std::nullopt;
    }
    {
      std::istringstream ss(line.substr(5));
      std::string field;
      while (std::getline(ss, field, ',')) {
        if (!field.empty()) run.curve.push_back(std::stod(field));
      }
    }
    set.runs.push_back(std::move(run));
  }
  if (set.runs.size() != params.runs) return std::nullopt;
  return set;
}

/// One trained VAE per process, shared by every VGAE-BO campaign (the
/// autoencoder is trained offline on unlabeled topologies, independent of
/// spec and run).
baselines::Vae& shared_vae(const baselines::VaeConfig& config) {
  static std::unique_ptr<baselines::Vae> vae;
  if (!vae) {
    util::log_info("training shared VGAE autoencoder (once per process)...");
    util::Rng rng(0xAEDC0DEULL);
    vae = std::make_unique<baselines::Vae>(config, rng);
    vae->train(rng);
    util::log_info("VGAE reconstruction accuracy: " +
                   std::to_string(vae->reconstruction_accuracy(500, rng)));
  }
  return *vae;
}

RunResult execute_run(const std::string& spec_name, Method method,
                      const CampaignParams& params, std::uint64_t seed) {
  const circuit::Spec& spec = circuit::spec_by_name(spec_name);
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = params.sizing_init;
  sizing_config.iterations = params.sizing_iterations;
  core::TopologyEvaluator evaluator(sizing::EvalContext(spec), sizing_config);
  util::Rng rng(seed);

  core::OptimizationOutcome outcome;
  switch (method) {
    case Method::IntoOa:
    case Method::IntoOaR:
    case Method::IntoOaM: {
      core::OptimizerConfig config;
      config.init_topologies = params.init_topologies;
      config.iterations = params.iterations;
      config.candidates.pool_size = params.pool;
      config.candidates.mutation_fraction =
          method == Method::IntoOa ? 0.5
          : method == Method::IntoOaM ? 1.0
                                      : 0.0;
      core::IntoOaOptimizer optimizer(config);
      outcome = optimizer.run(evaluator, rng);
      break;
    }
    case Method::FeGa: {
      baselines::FeGaConfig config;
      config.population = params.init_topologies;
      config.max_evaluations = params.init_topologies + params.iterations;
      outcome = baselines::FeGa(config).run(evaluator, rng);
      break;
    }
    case Method::VgaeBo: {
      baselines::VgaeBoConfig config;
      config.init_topologies = params.init_topologies;
      config.iterations = params.iterations;
      config.candidates = params.pool;
      outcome =
          baselines::VgaeBo(config).run(evaluator, rng, shared_vae(config.vae));
      break;
    }
  }

  RunResult run;
  run.success = outcome.success;
  run.curve = evaluator.fom_curve();
  run.curve.resize(params.budget(), run.curve.empty() ? 0.0 : run.curve.back());
  if (outcome.best_index && outcome.success) {
    run.final_fom = outcome.best_point.fom;
    run.best_topology_index = outcome.best_topology.index();
    run.best_topology = outcome.best_topology.to_string();
    run.gain_db = outcome.best_point.perf.gain_db;
    run.gbw_hz = outcome.best_point.perf.gbw_hz;
    run.pm_deg = outcome.best_point.perf.pm_deg;
    run.power_w = outcome.best_point.perf.power_w;
    run.best_values = outcome.best_values;
  }
  return run;
}

}  // namespace

CampaignSet run_or_load(const std::string& spec_name, Method method,
                        const CampaignParams& params,
                        const std::string& cache_dir) {
  const std::string path =
      cache_dir.empty() ? ""
                        : cache_path(cache_dir, spec_name, method, params);
  if (!path.empty()) {
    if (auto cached = load_cache(path, spec_name, method, params)) {
      util::log_info("loaded cached campaign " + path);
      return *cached;
    }
  }

  CampaignSet set;
  set.spec = spec_name;
  set.method = method;
  set.params = params;
  for (std::size_t r = 0; r < params.runs; ++r) {
    const std::uint64_t seed =
        params.seed * 1000003ULL +
        static_cast<std::uint64_t>(method) * 7919ULL +
        std::hash<std::string>{}(spec_name) % 104729ULL + r * 31ULL;
    util::log_info(method_name(method) + " on " + spec_name + ": run " +
                   std::to_string(r + 1) + "/" + std::to_string(params.runs));
    set.runs.push_back(execute_run(spec_name, method, params, seed));
  }
  if (!path.empty()) save_cache(path, set);
  return set;
}

BenchOptions BenchOptions::from_cli(const util::Cli& cli) {
  BenchOptions options;
  if (cli.has("quick")) {
    options.params.runs = 3;
    options.params.iterations = 20;
    options.params.pool = 100;
    options.params.sizing_init = 5;
    options.params.sizing_iterations = 15;
  }
  options.params.runs = static_cast<std::size_t>(
      cli.get_int("runs", static_cast<long>(options.params.runs)));
  options.params.init_topologies = static_cast<std::size_t>(cli.get_int(
      "init", static_cast<long>(options.params.init_topologies)));
  options.params.iterations = static_cast<std::size_t>(
      cli.get_int("iters", static_cast<long>(options.params.iterations)));
  options.params.pool = static_cast<std::size_t>(
      cli.get_int("pool", static_cast<long>(options.params.pool)));
  options.params.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<long>(options.params.seed)));
  options.cache_dir = cli.get("cache-dir", options.cache_dir);
  if (cli.has("no-cache")) options.cache_dir.clear();
  return options;
}

double reference_fom(const std::vector<CampaignSet>& sets_for_spec) {
  double weakest = 0.0;
  bool any = false;
  for (const auto& set : sets_for_spec) {
    if (set.successes() == 0) continue;
    const double fom = set.mean_final_fom();
    if (!any || fom < weakest) {
      weakest = fom;
      any = true;
    }
  }
  return any ? 0.9 * weakest : 0.0;
}

}  // namespace intooa::bench
