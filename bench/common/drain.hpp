#pragma once
// Shim: the campaign drain moved to src/campaign alongside the driver.
// New code should include "campaign/drain.hpp".

#include "campaign/drain.hpp"

namespace intooa::bench {
using namespace ::intooa::campaign;  // NOLINT(google-build-using-namespace)
}  // namespace intooa::bench
