#include "common/refine_flow.hpp"

#include "circuit/library.hpp"
#include "core/optimizer.hpp"
#include "svc/remote_backend.hpp"
#include "util/log.hpp"

namespace intooa::bench {

RefinementFlow run_refinement_flow(const CampaignParams& params,
                                   std::shared_ptr<store::EvalStore> store,
                                   std::shared_ptr<svc::ClientPool> remote) {
  const circuit::Spec& spec = circuit::spec_by_name("S-5");
  sizing::EvalContext ctx(spec);
  sizing::SizingConfig sizing_config;
  sizing_config.init_points = params.sizing_init;
  sizing_config.iterations = params.sizing_iterations;

  // Train the per-metric WL-GPs with one INTO-OA campaign (the models the
  // paper reuses from its S-5 optimization).
  util::log_info("refinement flow: training WL-GP models on S-5...");
  core::TopologyEvaluator evaluator(ctx, sizing_config);
  store::attach(evaluator, std::move(store));
  if (remote) svc::attach(evaluator, std::move(remote));
  core::OptimizerConfig opt_config;
  opt_config.init_topologies = params.init_topologies;
  opt_config.iterations = params.iterations;
  opt_config.candidates.pool_size = params.pool;
  core::IntoOaOptimizer optimizer(opt_config);
  util::Rng rng(params.seed ^ 0x5EF1EULL);
  optimizer.run(evaluator, rng);

  core::RefineModels models;
  models.objective = &optimizer.objective_model();
  for (std::size_t i = 0; i < circuit::Spec::kConstraintCount; ++i) {
    models.constraints[i] = &optimizer.constraint_model(i);
  }

  // Trusted sizings of the published topologies (stand-ins for the cited
  // designs' component values).
  util::log_info("refinement flow: sizing trusted designs C1 and C2...");
  const sizing::Sizer sizer(ctx, sizing_config);
  RefinementFlow flow;
  flow.c1_trusted = sizer.size(circuit::named_topology("C1"), rng);
  flow.c2_trusted = sizer.size(circuit::named_topology("C2"), rng);

  // Gradient-guided refinement, 40 simulations per attempt (paper budget).
  core::RefineConfig refine_config;
  refine_config.sims_per_attempt = 40;
  const core::Refiner refiner(ctx, refine_config);
  util::log_info("refinement flow: refining C1...");
  flow.c1 = refiner.refine(circuit::named_topology("C1"),
                           flow.c1_trusted.best_values, models, rng);
  util::log_info("refinement flow: refining C2...");
  flow.c2 = refiner.refine(circuit::named_topology("C2"),
                           flow.c2_trusted.best_values, models, rng);
  return flow;
}

}  // namespace intooa::bench
