// Regenerates Fig. 5: behavior-level op-amp optimization curves (best
// feasible FoM vs. number of simulations), averaged over the repeated
// runs, for all five methods on all five specification sets. Prints a
// down-sampled view of each series and writes the full-resolution mean
// curves to fig5_<spec>.csv for plotting.
//
// Options: --quick | --runs N --iters N --init N --pool N --seed S
//          --cache-dir DIR | --no-cache   --spec S-3 (restrict to one spec)
//          --store FILE (persistent cross-campaign evaluation store)
//          --threads N (default: hardware concurrency; results are
//          byte-identical for any value, 1 = fully serial)

#include <cstdio>

#include "common/campaign.hpp"
#include "obs/telemetry.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace intooa;
  using namespace intooa::bench;

  const util::Cli cli(argc, argv);
  bench::reject_unknown_flags(cli, {"spec"});
  obs::BenchTelemetry telemetry(
      obs::TelemetryOptions::from_cli(cli, util::LogLevel::Info));
  const BenchOptions options = BenchOptions::from_cli(cli);
  const std::string only_spec = cli.get("spec", "");

  std::printf("FIG. 5: Behavior-level op-amp optimization curves (mean of %zu runs)\n\n",
              options.params.runs);

  for (const auto& spec : circuit::paper_specs()) {
    if (!only_spec.empty() && spec.name != only_spec) continue;

    std::vector<CampaignSet> sets;
    for (Method method : all_methods()) {
      sets.push_back(
          run_or_load(spec.name, method, options.params, options.cache_dir,
                      options.store, options.remote));
    }

    // Full-resolution CSV for plotting.
    const std::size_t budget = options.params.budget();
    util::Table csv([&] {
      std::vector<std::string> headers = {"sim"};
      for (const auto& set : sets) headers.push_back(method_name(set.method));
      return headers;
    }());
    std::vector<std::vector<double>> curves;
    for (const auto& set : sets) curves.push_back(set.mean_curve());
    for (std::size_t s = 0; s < budget; ++s) {
      std::vector<std::string> row = {std::to_string(s + 1)};
      for (const auto& curve : curves) row.push_back(util::fmt(curve[s], 6));
      csv.add_row(std::move(row));
    }
    const std::string csv_name = "fig5_" + spec.name + ".csv";
    csv.write_csv(csv_name);

    // Down-sampled terminal view (every 10% of the budget).
    std::printf("-- %s (reference FoM %.2f, dashed line) -> %s\n", spec.name.c_str(),
                reference_fom(sets), csv_name.c_str());
    util::Table view([&] {
      std::vector<std::string> headers = {"# Sim"};
      for (const auto& set : sets) headers.push_back(method_name(set.method));
      return headers;
    }());
    for (std::size_t frac = 1; frac <= 10; ++frac) {
      const std::size_t s = frac * budget / 10 - 1;
      std::vector<std::string> row = {std::to_string(s + 1)};
      for (const auto& curve : curves) row.push_back(util::fmt(curve[s], 4));
      view.add_row(std::move(row));
    }
    std::printf("%s\n", view.to_ascii().c_str());
  }
  return 0;
}
